(* jigsaw_cli: command-line driver for the Jigsaw / Slice-and-Dice
   reproduction.

   Subcommands:
     grid    generate a trajectory, run the adjoint NuFFT through the
             reconstruction service (cold build + warm cached replay),
             report latencies/stats and optionally validate against the
             serial reference
     recon   reconstruct the Shepp-Logan phantom from a simulated
             acquisition through any registered backend, write a PGM image
     batch   serve a batch of reconstruction requests across the domain
             pool, amortising plans through the cache and buffers through
             the workspace arenas
     accuracy  adjoint-NuFFT error vs the exact NuDFT (tabulated KB and
             exact min-max interpolation)
     info    print the hardware models' parameters (Table I / Table II)

   Backends are looked up in the Nufft.Operator registry; --list-backends
   prints every registered name. All subcommands report failures as typed
   errors through Cmdliner (clean exit code + one-line message), never as
   escaped exceptions. *)

module Cvec = Numerics.Cvec
module C = Numerics.Complexd
module Op = Nufft.Operator
module Svc = Pipeline.Recon_service

let ( let* ) = Result.bind

(* ------------------------------------------------------------------ *)
(* Shared helpers *)

(* The hardware-model backends live outside lib/core; plug them into the
   registry once at startup. *)
let register_backends () =
  Jigsaw.Operator_backend.register ();
  Gpusim.Operator_backend.register ()

let make_trajectory kind m n =
  match kind with
  | "radial" ->
      let readout = 2 * n in
      let spokes = max 1 (m / readout) in
      Ok (Trajectory.Radial.make ~spokes ~readout ())
  | "spiral" ->
      Ok
        (Trajectory.Spiral.make ~samples_per_interleave:m
           ~turns:(float_of_int n /. 8.0) ())
  | "rosette" -> Ok (Trajectory.Rosette.make ~samples:m ())
  | "random" -> Ok (Trajectory.Random_traj.make ~samples:m ())
  | "cartesian" -> Ok (Trajectory.Cartesian.make ~n)
  | other ->
      Error
        (Printf.sprintf
           "unknown trajectory %S (expected radial, spiral, rosette, random \
            or cartesian)"
           other)

let samples_of_traj ~g ~seed traj =
  let m = Trajectory.Traj.length traj in
  let rng = Random.State.make [| seed |] in
  let values =
    Cvec.init m (fun _ ->
        C.make
          (0.2 *. (Random.State.float rng 2.0 -. 1.0))
          (0.2 *. (Random.State.float rng 2.0 -. 1.0)))
  in
  Nufft.Sample.of_omega_2d ~g ~omega_x:traj.Trajectory.Traj.omega_x
    ~omega_y:traj.Trajectory.Traj.omega_y ~values

(* --kernel NAME -> Window.family, as a typed error. *)
let family_of_flag = function
  | None -> Ok None
  | Some s -> (
      match Numerics.Window.family_of_string s with
      | Some f -> Ok (Some f)
      | None ->
          Error
            (Printf.sprintf "unknown kernel %S (expected es or kaiser-bessel)"
               s))

(* --transform NAME -> Transform.t; type-2 is not a reconstruction, so
   the CLI rejects it with a pointer at the API that serves it. *)
let transform_of_flag s =
  match Nufft.Transform.of_string s with
  | Some Nufft.Transform.Type2 ->
      Error
        "--transform type2 is a forward evaluation, not a reconstruction; \
         use the Recon_service/Operator API for forward projections"
  | Some t -> Ok t
  | None ->
      Error
        (Printf.sprintf "unknown transform %S (expected type1 or type3)" s)

(* --tune: hand the backend choice to the auto-tuner, unless
   JIGSAW_TUNE=off — then the explicit backend stands, so an off-mode run
   is bit-identical to one without --tune. *)
let apply_tune tune backend =
  if tune && Nufft.Tuner.mode () <> Nufft.Tuner.Off then "auto" else backend

let print_tuner_line tune =
  if tune then
    match Nufft.Tuner.mode () with
    | Nufft.Tuner.Off -> print_endline "tuner: JIGSAW_TUNE=off (not tuning)"
    | _ ->
        List.iter
          (fun ((k : Nufft.Tuner.key), (c : Nufft.Tuner.choice)) ->
            Printf.printf
              "tuner: %dD n=%d -> %s (%.2e samples/s; %s)\n" k.Nufft.Tuner.dims
              k.Nufft.Tuner.n c.Nufft.Tuner.backend c.Nufft.Tuner.sps
              (String.concat ", "
                 (List.map
                    (fun (t : Nufft.Tuner.trial) ->
                      Printf.sprintf "%s %.2e" t.Nufft.Tuner.engine
                        t.Nufft.Tuner.samples_per_sec)
                    c.Nufft.Tuner.trials)))
          (Nufft.Tuner.cached ())

(* Historical CLI spellings, mapped onto registry names. *)
let canonical_backend name =
  match String.lowercase_ascii name with
  | "output" -> "output-parallel"
  | "parallel" -> "slice-parallel"
  | "replay" -> "replay-parallel"
  | "jigsaw" -> "jigsaw-2d"
  | "gpu-slice" -> "gpusim-slice"
  | "gpu-binned" -> "gpusim-binned"
  | other -> other

(* Both subcommands drive 2D problems, so only 2D-capable backends are
   usable (and listed) here; 3D-only entries like jigsaw-3d stay reachable
   through the Operator API. *)
let list_backends () =
  register_backends ();
  print_endline "registered backends (NAME [dims] types  description):";
  List.iter
    (fun (e : Op.entry) ->
      if List.mem 2 e.Op.dims then
        Printf.printf "  %-15s %s %-8s  %s\n" e.Op.name
          (String.concat ""
             (List.map (fun d -> Printf.sprintf "[%dD]" d) e.Op.dims))
          (Nufft.Transform.list_to_string e.Op.transforms)
          e.Op.doc)
    (Op.entries ());
  print_endline
    "  (types: t1 = adjoint/recon, t2 = forward, t3 = nonuniform-to-\n\
    \   nonuniform; the jigsaw/gpusim hardware models support t1/t2 only)";
  `Ok ()

(* Typed Result -> Cmdliner: a one-line error on stderr and a non-zero
   exit, instead of an escaped exception. *)
let to_ret = function Ok () -> `Ok () | Error msg -> `Error (false, msg)

let svc_error r = Result.map_error Svc.error_message r

(* --trace FILE / --metrics switch the telemetry layer on for the run;
   the chrome trace is written and the metrics + span-tree summaries
   printed after the subcommand body finishes. *)
let with_telemetry ~trace ~metrics f =
  let on = trace <> None || metrics in
  if on then begin
    Telemetry.reset ();
    Telemetry.set_enabled true
  end;
  let r = f () in
  if on then begin
    Telemetry.set_enabled false;
    (match trace with
    | Some path ->
        Telemetry.write_chrome_trace path;
        Printf.printf
          "chrome trace written to %s (load in chrome://tracing or \
           https://ui.perfetto.dev)\n"
          path
    | None -> ());
    if metrics then begin
      print_string (Telemetry.tree_summary ());
      print_string (Telemetry.metrics_summary ())
    end
  end;
  r

(* --domains D sizes the process-wide pool: D maps to the paper's T^d
   workers in the sense that the t^2 dice columns (or g z-slices in 3D)
   are distributed over D domains. *)
let apply_domains = function
  | None -> Ok None
  | Some d when d >= 1 ->
      Runtime.Pool.set_global_domains d;
      Ok (Some (Runtime.Pool.global ()))
  | Some _ -> Error "--domains must be >= 1"

let print_cache_line svc =
  let cs = Pipeline.Plan_cache.stats (Svc.cache svc) in
  Printf.printf
    "plan cache: %d hits / %d misses / %d evictions (%d entries, %.1f MiB)\n"
    cs.Pipeline.Plan_cache.hits cs.Pipeline.Plan_cache.misses
    cs.Pipeline.Plan_cache.evictions cs.Pipeline.Plan_cache.entries
    (float_of_int cs.Pipeline.Plan_cache.bytes /. (1024.0 *. 1024.0))

let print_backend_stats op =
  let st = Op.stats_of op in
  if st.Op.adjoint_s > 0.0 then
    Printf.printf "%s: %.3f ms (gridding %.3f + fft %.3f + deapod %.3f)\n"
      (Op.name_of op)
      (1e3 *. st.Op.adjoint_s)
      (1e3 *. st.Op.gridding_s)
      (1e3 *. st.Op.fft_s)
      (1e3 *. st.Op.deapod_s);
  if st.Op.cycles > 0 then Printf.printf "simulated cycles: %d\n" st.Op.cycles;
  if Nufft.Gridding_stats.total_work st.Op.grid > 0 then
    Format.printf "stats: %a@." Nufft.Gridding_stats.pp st.Op.grid

(* ------------------------------------------------------------------ *)
(* grid subcommand *)

let run_grid n traj_kind m backend w l tol kernel transform tune seed validate
    domains trace metrics list =
  if list then list_backends ()
  else
    to_ret @@ with_telemetry ~trace ~metrics
    @@ fun () ->
    register_backends ();
    let* pool = apply_domains domains in
    let* family = family_of_flag kernel in
    let* transform = transform_of_flag transform in
    let g = 2 * n in
    let* traj = make_trajectory traj_kind m n in
    let s = samples_of_traj ~g ~seed traj in
    let m = Nufft.Sample.length s in
    let backend = apply_tune tune (canonical_backend backend) in
    let svc = Svc.create ?pool ~w ~l () in
    let req =
      { Svc.backend;
        transform;
        n;
        coords = s;
        values = s.Nufft.Sample.values;
        density = None;
        method_ = Svc.Adjoint;
        tol;
        family }
    in
    (match tol with
    | Some t ->
        Printf.printf
          "adjoint NuFFT of %d %s samples onto %dx%d (tol=%g, kernel=%s)\n" m
          traj_kind g g t
          (Numerics.Window.family_name
             (Option.value family ~default:Numerics.Window.ES))
    | None ->
        Printf.printf "adjoint NuFFT of %d %s samples onto %dx%d (w=%d, l=%d)\n"
          m traj_kind g g w l);
    (* The cold request pays the plan build + trajectory decomposition;
       the warm one replays the cached entry. *)
    let* cold = svc_error (Svc.submit svc req) in
    let* warm = svc_error (Svc.submit svc req) in
    Printf.printf
      "%s: cold %.3f ms (plan build + transform), warm %.3f ms (cached plan)\n"
      backend
      (1e3 *. cold.Svc.elapsed_s)
      (1e3 *. warm.Svc.elapsed_s);
    print_tuner_line tune;
    (* The stats/validate lookups need a concrete registry name; resolve
       "auto" the same way the service just did (a tuner cache hit). *)
    let backend =
      if backend = "auto" then
        Nufft.Tuner.resolve ?tol ?family ~default:"serial" ~n ~coords:s ()
      else backend
    in
    let* op, _ =
      svc_error (Svc.operator ?tol ?family ~transform svc ~backend ~n ~coords:s)
    in
    print_backend_stats op;
    let* () =
      if not validate then Ok ()
      else
        let* reference =
          svc_error (Svc.submit svc { req with Svc.backend = "serial" })
        in
        Printf.printf "NRMSD vs serial reference: %.3e\n"
          (Cvec.nrmsd ~reference:reference.Svc.image cold.Svc.image);
        Ok ()
    in
    print_cache_line svc;
    Ok ()

(* ------------------------------------------------------------------ *)
(* recon subcommand *)

let run_recon n spokes output backend tol kernel transform tune domains cg
    trace metrics list =
  if list then list_backends ()
  else
    to_ret @@ with_telemetry ~trace ~metrics
    @@ fun () ->
    register_backends ();
    let* pool = apply_domains domains in
    let* family = family_of_flag kernel in
    let* transform = transform_of_flag transform in
    let* () =
      match (transform, cg) with
      | Nufft.Transform.Type3, Some _ ->
          Error "--cg applies to type-1 reconstructions only"
      | _ -> Ok ()
    in
    (* The phantom is built before the service sees a request, so the
       image-size check must happen here to stay a typed error. *)
    let* () = if n < 2 then Error "recon: n must be >= 2" else Ok () in
    let phantom = Imaging.Phantom.make ~n () in
    let spokes =
      match spokes with
      | Some s -> s
      | None -> Trajectory.Radial.fully_sampled_spokes ~n
    in
    let traj = Trajectory.Radial.make ~spokes ~readout:(2 * n) () in
    let density = Trajectory.Radial.density_weights traj in
    let coords = Imaging.Recon.coords_of_traj ~g:(2 * n) traj in
    let backend = canonical_backend backend in
    (* --tune (or an explicit --backend auto) resolves here, before the
       operator is built, so acquisition and reconstruction share the
       tuned backend's cache entry. *)
    let backend =
      if tune || backend = "auto" then
        let default = if backend = "auto" then "serial" else backend in
        match Nufft.Tuner.mode () with
        | Nufft.Tuner.Off -> default
        | _ -> Nufft.Tuner.resolve ?tol ?family ~default ~n ~coords ()
      else backend
    in
    let svc = Svc.create ?pool () in
    (* The acquisition needs the forward operator; taking it from the
       service's cache means the reconstruction request below is a warm
       hit on the same entry. A type-3 context still provides the forward
       (type-2) direction — CPU operators carry all three legs. *)
    let* op, _ =
      svc_error (Svc.operator ?tol ?family ~transform svc ~backend ~n ~coords)
    in
    let samples = Imaging.Recon.acquire_op op phantom in
    let method_ = match cg with None -> Svc.Adjoint | Some i -> Svc.Cg i in
    let req =
      { Svc.backend;
        transform;
        n;
        coords;
        values = samples.Nufft.Sample.values;
        density = Some density;
        method_;
        tol;
        family }
    in
    let* resp = svc_error (Svc.submit svc req) in
    print_tuner_line tune;
    let method_desc =
      match (transform, method_) with
      | Nufft.Transform.Type3, _ -> "type-3 adjoint"
      | _, Svc.Adjoint -> "adjoint"
      | _, Svc.Cg _ -> Printf.sprintf "CG(%d iters)" resp.Svc.iterations
    in
    let recon = resp.Svc.image in
    let err = Imaging.Metrics.nrmsd_scaled ~reference:phantom recon in
    Imaging.Pgm.write_magnitude ~path:output ~n recon;
    Printf.printf
      "reconstructed %dx%d phantom through %s (%s) from %d spokes (%d \
       samples): scaled NRMSD %.3f -> %s\n"
      n n (Op.name_of op) method_desc spokes
      (Trajectory.Traj.length traj)
      err output;
    let st = Op.stats_of op in
    if st.Op.cycles > 0 then
      Printf.printf "simulated gridding cycles: %d\n" st.Op.cycles;
    print_cache_line svc;
    Ok ()

(* ------------------------------------------------------------------ *)
(* batch subcommand *)

(* N reconstruction requests served through one Recon_service: a --share
   fraction repeat the same trajectory (rebuilt per request, so the
   coordinate arrays are equal but physically distinct — the cache's
   canonical-rebinding path), the rest use distinct spoke counts. With
   --domains > 1 the requests overlap across the pool. *)
let run_batch n requests share backend tol kernel tune cg seed domains trace
    metrics list =
  if list then list_backends ()
  else
    to_ret @@ with_telemetry ~trace ~metrics
    @@ fun () ->
    register_backends ();
    let* () = if requests < 1 then Error "--requests must be >= 1" else Ok () in
    let* () =
      if share < 0.0 || share > 1.0 then Error "--share must be in [0, 1]"
      else Ok ()
    in
    let* pool = apply_domains domains in
    let* family = family_of_flag kernel in
    let svc = Svc.create ?pool () in
    let g = 2 * n in
    let backend = apply_tune tune (canonical_backend backend) in
    let base_spokes = Trajectory.Radial.fully_sampled_spokes ~n in
    let shared = int_of_float ((share *. float_of_int requests) +. 0.5) in
    let method_ = match cg with None -> Svc.Adjoint | Some i -> Svc.Cg i in
    let spokes_of i =
      if i < shared then base_spokes else base_spokes + (i - shared + 1)
    in
    let make_req i =
      let traj = Trajectory.Radial.make ~spokes:(spokes_of i) ~readout:g () in
      let density = Trajectory.Radial.density_weights traj in
      let coords = Imaging.Recon.coords_of_traj ~g traj in
      let m = Nufft.Sample.length coords in
      let rng = Random.State.make [| seed; i |] in
      let values =
        Cvec.init m (fun _ ->
            C.make
              (0.2 *. (Random.State.float rng 2.0 -. 1.0))
              (0.2 *. (Random.State.float rng 2.0 -. 1.0)))
      in
      { Svc.backend;
        transform = Nufft.Transform.Type1;
        n;
        coords;
        values;
        density = Some density;
        method_;
        tol;
        family }
    in
    let reqs = List.init requests make_req in
    let t0 = Unix.gettimeofday () in
    let results = Svc.submit_batch svc reqs in
    let dt = Unix.gettimeofday () -. t0 in
    let ok = ref 0 in
    List.iteri
      (fun i r ->
        match r with
        | Ok resp ->
            incr ok;
            Printf.printf "  request %2d (%3d spokes): ok %8.2f ms%s\n" i
              (spokes_of i)
              (1e3 *. resp.Svc.elapsed_s)
              (if resp.Svc.iterations > 0 then
                 Printf.sprintf " (%d CG iters)" resp.Svc.iterations
               else "")
        | Error e ->
            Printf.printf "  request %2d (%3d spokes): error %s\n" i
              (spokes_of i) (Svc.error_message e))
      results;
    let domains_used =
      match pool with Some p -> Runtime.Pool.size p | None -> 1
    in
    Printf.printf "%d/%d requests ok in %.3f s (%.1f req/s, %d domain%s)\n" !ok
      requests dt
      (float_of_int requests /. dt)
      domains_used
      (if domains_used = 1 then "" else "s");
    print_tuner_line tune;
    print_cache_line svc;
    let ws = Pipeline.Workspace.stats (Svc.workspace svc) in
    Printf.printf "arenas: %d checkouts (%d reused, %d grows, %d retained)\n"
      ws.Pipeline.Workspace.checkouts ws.Pipeline.Workspace.reuses
      ws.Pipeline.Workspace.grows ws.Pipeline.Workspace.retained;
    if !ok = 0 then Error "batch: every request failed" else Ok ()

(* ------------------------------------------------------------------ *)
(* accuracy subcommand *)

(* --contract: run the tolerance sweep of Imaging.Accuracy (both kernel
   families unless --kernel narrows it, all trajectories, 2D+3D) and fail
   with a non-zero exit when any cell breaches the 10x accuracy contract —
   the CI accuracy-smoke gate. *)
let run_contract tols kernel type3 seed =
  register_backends ();
  match family_of_flag kernel with
  | Error msg -> `Error (false, msg)
  | Ok family ->
      let families =
        match family with
        | Some f -> [ f ]
        | None -> [ Numerics.Window.ES; Numerics.Window.KB ]
      in
      let tols =
        match tols with [] -> Imaging.Accuracy.default_tols | ts -> ts
      in
      let rows = Imaging.Accuracy.sweep ~seed ~families ~tols () in
      let rows =
        if type3 then
          rows @ Imaging.Accuracy.sweep_type3 ~seed ~families ~tols ()
        else rows
      in
      List.iter (fun r -> Format.printf "%a@." Imaging.Accuracy.pp_row r) rows;
      let failed = Imaging.Accuracy.failures rows in
      Printf.printf "accuracy contract: %d/%d cells within %gx of request\n"
        (List.length rows - List.length failed)
        (List.length rows) Imaging.Accuracy.contract_slack;
      if failed = [] then `Ok ()
      else
        `Error
          ( false,
            Printf.sprintf "accuracy contract breached in %d cell(s)"
              (List.length failed) )

let run_accuracy n m w sigma l tols kernel contract type3 seed =
  if contract then run_contract tols kernel type3 seed
  else if n > 48 then
    `Error
      ( false,
        "accuracy: n must be <= 48 (the exact NuDFT reference is O(M n^2))" )
  else begin
    let rng = Random.State.make [| seed |] in
    let omega () =
      Array.init m (fun _ ->
          Random.State.float rng (2.0 *. Float.pi) -. Float.pi)
    in
    let ox = omega () and oy = omega () in
    let values =
      Cvec.init m (fun _ ->
          C.make
            (Random.State.float rng 2.0 -. 1.0)
            (Random.State.float rng 2.0 -. 1.0))
    in
    let exact = Nufft.Nudft.adjoint_2d ~n ~omega_x:ox ~omega_y:oy ~values in
    match family_of_flag kernel with
    | Error msg -> `Error (false, msg)
    | Ok family ->
    let plan =
      match tols with
      | t :: _ -> Nufft.Plan.make ~n ~tol:t ?family ~sigma ()
      | [] -> Nufft.Plan.make ~n ?family ~w ~sigma ~l ()
    in
    let w = plan.Nufft.Plan.w and l = plan.Nufft.Plan.l in
    let g = plan.Nufft.Plan.g in
    let samples = Nufft.Sample.of_omega_2d ~g ~omega_x:ox ~omega_y:oy ~values in
    let fast = Nufft.Plan.adjoint_2d plan samples in
    Printf.printf
      "adjoint NuFFT vs exact NuDFT (n=%d, m=%d, w=%d, sigma=%g, L=%d, g=%d):\n"
      n m w sigma l g;
    Printf.printf "  %-20s  NRMSD %.3e\n"
      (Numerics.Window.name plan.Nufft.Plan.kernel ^ " table:")
      (Cvec.nrmsd ~reference:exact fast);
    let mm =
      Nufft.Minmax.adjoint_2d ~scaling:Nufft.Minmax.Kaiser_bessel_scaling ~n ~g
        ~w ~gx:(Nufft.Sample.gx samples) ~gy:(Nufft.Sample.gy samples) values
    in
    Printf.printf "  exact min-max:        NRMSD %.3e\n"
      (Cvec.nrmsd ~reference:exact mm);
    `Ok ()
  end

(* ------------------------------------------------------------------ *)
(* info subcommand *)

let run_info () =
  print_endline "JIGSAW model parameters (paper Tables I & II)";
  print_endline "  Table I ranges: N 8-1024, T 8, W 1-8, L 1-64 (pow2),";
  print_endline "                  32-bit fixed-point pipeline, 16-bit weights";
  List.iter
    (fun (name, m) ->
      Printf.printf "  %-28s %8.2f mW %8.2f mm2\n" name
        m.Jigsaw.Synthesis.power_mw m.Jigsaw.Synthesis.area_mm2)
    Jigsaw.Synthesis.table;
  let gpu = Gpusim.Config.titan_xp in
  Printf.printf
    "  GPU model: %d SMs @ %.2f GHz, L2 %d KiB, DRAM %.0f B/cycle\n"
    gpu.Gpusim.Config.num_sms gpu.Gpusim.Config.clock_ghz
    (gpu.Gpusim.Config.l2.Cachesim.Cache.size_bytes / 1024)
    gpu.Gpusim.Config.dram.Cachesim.Dram.bytes_per_cycle;
  `Ok ()

(* ------------------------------------------------------------------ *)
(* Cmdliner plumbing *)

open Cmdliner

let n_arg =
  Arg.(value & opt int 128 & info [ "n" ] ~docv:"N" ~doc:"Image size per side.")

let traj_arg =
  Arg.(
    value
    & opt string "radial"
    & info [ "t"; "trajectory" ] ~docv:"KIND"
        ~doc:"Trajectory: radial, spiral, rosette, random, cartesian.")

let m_arg =
  Arg.(
    value & opt int 50000
    & info [ "m"; "samples" ] ~docv:"M" ~doc:"Approximate sample count.")

let backend_arg =
  Arg.(
    value
    & opt string "slice"
    & info [ "b"; "backend" ] ~docv:"BACKEND"
        ~doc:
          "Registered operator backend (see $(b,--list-backends)): serial, \
           output-parallel, binned, slice, slice-parallel, jigsaw-2d, \
           gpusim-slice, gpusim-binned, ...")

let list_backends_arg =
  Arg.(
    value & flag
    & info [ "list-backends" ]
        ~doc:"Print every registered operator backend and exit.")

let w_arg = Arg.(value & opt int 6 & info [ "w" ] ~docv:"W" ~doc:"Window width.")

let l_arg =
  Arg.(
    value & opt int 512
    & info [ "l" ] ~docv:"L" ~doc:"Table oversampling factor.")

let tol_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "tol" ] ~docv:"TOL"
        ~doc:
          "Requested relative accuracy, e.g. $(b,1e-5): kernel, window \
           width and table oversampling are derived from it (overriding \
           $(b,-w)/$(b,-l)); the measured error vs the exact NuDFT stays \
           within 10x the request.")

let kernel_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "kernel" ] ~docv:"KIND"
        ~doc:
          "Interpolation kernel family: $(b,es) (exponential of \
           semicircle) or $(b,kb) (Kaiser-Bessel). Default: ES with \
           $(b,--tol), Kaiser-Bessel otherwise.")

let transform_arg =
  Arg.(
    value
    & opt string "type1"
    & info [ "transform" ] ~docv:"TYPE"
        ~doc:
          "Transform type: $(b,type1) (classic adjoint reconstruction) or \
           $(b,type3) (treat the trajectory as arbitrary source \
           frequencies and reconstruct on the centred lattice via the \
           scale/shift decomposition). Type-2 forward evaluation is \
           API-only.")

let tune_arg =
  Arg.(
    value & flag
    & info [ "tune" ]
        ~doc:
          "Let the auto-tuner pick the backend from measured trials over \
           this trajectory (overriding $(b,--backend)). Controlled by \
           $(b,JIGSAW_TUNE): $(b,off) disables tuning (the explicit \
           backend stands, bit-identically), $(b,auto) or unset measures, \
           any other value forces that backend.")

let seed_arg =
  Arg.(value & opt int 0 & info [ "seed" ] ~docv:"SEED" ~doc:"Value RNG seed.")

let validate_arg =
  Arg.(
    value & flag
    & info [ "validate" ] ~doc:"Compare against the serial double reference.")

let domains_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "domains" ] ~docv:"D"
        ~doc:
          "Size of the domain pool used by the parallel backend and \
           pool-backed plans — the paper's \\$(i,T^d) workers multiplexed \
           onto D OCaml domains (default: the runtime's recommended count).")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record a Chrome trace_event JSON of the run (plan build, \
           gridding, FFT, pool scheduling, CG iterations, hardware cycle \
           models) to $(docv); open it in chrome://tracing or Perfetto.")

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:
          "Print the aggregated telemetry span tree and counter/histogram \
           summary after the run.")

let cg_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "cg" ] ~docv:"ITERS"
        ~doc:
          "Reconstruct iteratively: conjugate gradient on the \
           density-weighted normal equations, at most $(docv) iterations \
           (default: single adjoint application).")

let grid_cmd =
  let doc = "run the adjoint NuFFT through a registered backend" in
  Cmd.v (Cmd.info "grid" ~doc)
    Term.(
      ret
        (const run_grid $ n_arg $ traj_arg $ m_arg $ backend_arg $ w_arg
       $ l_arg $ tol_arg $ kernel_arg $ transform_arg $ tune_arg $ seed_arg
       $ validate_arg $ domains_arg $ trace_arg $ metrics_arg
       $ list_backends_arg))

let recon_cmd =
  let doc = "reconstruct the Shepp-Logan phantom from radial k-space" in
  let spokes =
    Arg.(
      value
      & opt (some int) None
      & info [ "spokes" ] ~docv:"S" ~doc:"Spoke count (default: Nyquist).")
  in
  let output =
    Arg.(
      value & opt string "recon.pgm"
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output PGM path.")
  in
  Cmd.v (Cmd.info "recon" ~doc)
    Term.(
      ret
        (const run_recon $ n_arg $ spokes $ output $ backend_arg $ tol_arg
       $ kernel_arg $ transform_arg $ tune_arg $ domains_arg $ cg_arg
       $ trace_arg $ metrics_arg $ list_backends_arg))

let batch_cmd =
  let doc =
    "serve a batch of reconstruction requests through the plan cache and \
     workspace arenas"
  in
  let requests =
    Arg.(
      value & opt int 8
      & info [ "requests" ] ~docv:"R" ~doc:"Number of requests in the batch.")
  in
  let share =
    Arg.(
      value & opt float 0.5
      & info [ "share" ] ~docv:"F"
          ~doc:
            "Fraction of the batch repeating one trajectory (plan-cache \
             hits); the rest use distinct spoke counts.")
  in
  Cmd.v (Cmd.info "batch" ~doc)
    Term.(
      ret
        (const run_batch $ n_arg $ requests $ share $ backend_arg $ tol_arg
       $ kernel_arg $ tune_arg $ cg_arg $ seed_arg $ domains_arg $ trace_arg
       $ metrics_arg $ list_backends_arg))

let info_cmd =
  let doc = "print hardware-model parameters" in
  Cmd.v (Cmd.info "info" ~doc) Term.(ret (const run_info $ const ()))

(* ------------------------------------------------------------------ *)
(* serve subcommand *)

let run_serve host port workers queue_capacity read_timeout max_connections
    max_tenants cache_entries print_metrics =
  register_backends ();
  (* Counters and histograms feed /metrics; span recording stays off so a
     long-running server's per-domain sinks cannot grow without bound. *)
  Telemetry.reset ();
  Telemetry.set_enabled true;
  Telemetry.set_span_recording false;
  let config =
    { Serving.Server.default_config with
      host;
      port;
      workers;
      queue_capacity;
      read_timeout_s = read_timeout;
      max_connections;
      tenants =
        { Serving.Tenants.default_config with max_tenants; cache_entries } }
  in
  let srv = Serving.Server.create ~config () in
  match Serving.Server.start srv with
  | exception Unix.Unix_error (e, _, _) ->
      to_ret
        (Error
           (Printf.sprintf "cannot listen on %s:%d: %s" host port
              (Unix.error_message e)))
  | () ->
      Printf.printf
        "jigsaw serve: listening on %s:%d (%d workers, queue %d)\n\
         metrics: curl http://%s:%d/metrics — stop with SIGINT/SIGTERM \
         (graceful drain)\n\
         %!"
        host (Serving.Server.port srv) workers queue_capacity host
        (Serving.Server.port srv);
      (* The handler only flips a flag: running drain() from inside a
         signal handler could deadlock against a lock the interrupted
         code holds. The main loop below does the actual work. *)
      let stop_requested = Atomic.make false in
      let request_stop _ = Atomic.set stop_requested true in
      Sys.set_signal Sys.sigint (Sys.Signal_handle request_stop);
      Sys.set_signal Sys.sigterm (Sys.Signal_handle request_stop);
      while not (Atomic.get stop_requested) do
        try Thread.delay 0.2
        with Unix.Unix_error (EINTR, _, _) -> ()
      done;
      print_endline "jigsaw serve: draining (in-flight requests finish)...";
      let drained = Serving.Server.stop ~timeout_s:30.0 srv in
      let s = Serving.Server.stats srv in
      Printf.printf
        "jigsaw serve: %s — %d requests (%d responses, %d shed, %d timeouts, \
         %d protocol errors, %d disconnects) across %d tenants\n"
        (if drained then "drained" else "drain timed out")
        s.Serving.Server.s_requests s.Serving.Server.s_responses
        s.Serving.Server.s_shed s.Serving.Server.s_timeouts
        s.Serving.Server.s_protocol_errors s.Serving.Server.s_disconnects
        s.Serving.Server.s_tenants;
      List.iter
        (fun (tenant, cs) ->
          Printf.printf
            "  tenant %-12s plan cache: %d hits / %d misses (%d entries)\n"
            tenant cs.Pipeline.Plan_cache.hits cs.Pipeline.Plan_cache.misses
            cs.Pipeline.Plan_cache.entries)
        (Serving.Tenants.cache_stats (Serving.Server.tenants srv));
      if print_metrics then print_string (Serving.Server.metrics_text srv);
      Telemetry.set_enabled false;
      if drained then `Ok () else `Error (false, "graceful drain timed out")

let serve_cmd =
  let doc =
    "serve reconstruction requests over the JGS1 binary protocol (with \
     /metrics over HTTP on the same port)"
  in
  let host =
    Arg.(
      value & opt string "127.0.0.1"
      & info [ "host" ] ~docv:"ADDR" ~doc:"Listen address.")
  in
  let port =
    Arg.(
      value & opt int 7411
      & info [ "port" ] ~docv:"PORT"
          ~doc:"Listen port (0 picks an ephemeral port).")
  in
  let workers =
    Arg.(
      value & opt int 2
      & info [ "workers" ] ~docv:"W"
          ~doc:"Reconstruction worker domains.")
  in
  let queue =
    Arg.(
      value & opt int 32
      & info [ "queue" ] ~docv:"Q"
          ~doc:
            "Admission queue capacity; requests beyond it are shed with a \
             typed error.")
  in
  let timeout =
    Arg.(
      value & opt float 5.0
      & info [ "read-timeout" ] ~docv:"SECONDS"
          ~doc:"Per-connection read timeout (slow-loris defence).")
  in
  let max_conns =
    Arg.(
      value & opt int 128
      & info [ "max-connections" ] ~docv:"C"
          ~doc:"Concurrent connection cap.")
  in
  let max_tenants =
    Arg.(
      value & opt int 64
      & info [ "max-tenants" ] ~docv:"T"
          ~doc:"Tenant cap; new tenants past it get a typed quota error.")
  in
  let cache_entries =
    Arg.(
      value & opt int 8
      & info [ "cache-entries" ] ~docv:"E"
          ~doc:"Per-tenant plan-cache entry quota.")
  in
  let print_metrics =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:"Print the final Prometheus exposition on exit.")
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      ret
        (const run_serve $ host $ port $ workers $ queue $ timeout $ max_conns
       $ max_tenants $ cache_entries $ print_metrics))

let accuracy_cmd =
  let doc = "measure adjoint-NuFFT accuracy against the exact NuDFT" in
  let n =
    Arg.(value & opt int 24 & info [ "n" ] ~docv:"N" ~doc:"Image size (<= 48).")
  in
  let m =
    Arg.(value & opt int 300 & info [ "m" ] ~docv:"M" ~doc:"Sample count.")
  in
  let sigma =
    Arg.(
      value & opt float 2.0
      & info [ "sigma" ] ~docv:"S" ~doc:"Oversampling factor.")
  in
  let tols =
    Arg.(
      value & opt_all float []
      & info [ "tol" ] ~docv:"TOL"
          ~doc:
            "Requested tolerance (repeatable). Without $(b,--contract): \
             derive the plan geometry from the first value instead of \
             $(b,-w)/$(b,-l). With $(b,--contract): the tolerances to \
             sweep (default 1e-2 .. 1e-6).")
  in
  let contract =
    Arg.(
      value & flag
      & info [ "contract" ]
          ~doc:
            "Run the measured accuracy-contract sweep (ES + Kaiser-Bessel \
             unless $(b,--kernel) narrows it, radial/spiral/random, \
             2D+3D) and exit non-zero if any cell exceeds 10x its \
             requested tolerance.")
  in
  let type3 =
    Arg.(
      value & flag
      & info [ "type3" ]
          ~doc:
            "With $(b,--contract): also sweep the type-3 \
             (nonuniform-to-nonuniform) transform against the direct \
             NuDFT oracle at every tolerance, 2D+3D, under the same 10x \
             contract.")
  in
  Cmd.v (Cmd.info "accuracy" ~doc)
    Term.(
      ret
        (const run_accuracy $ n $ m $ w_arg $ sigma $ l_arg $ tols
       $ kernel_arg $ contract $ type3 $ seed_arg))

let main_cmd =
  let doc = "Slice-and-Dice / JIGSAW NuFFT acceleration reproduction" in
  Cmd.group (Cmd.info "jigsaw_cli" ~doc)
    [ grid_cmd; recon_cmd; batch_cmd; accuracy_cmd; info_cmd; serve_cmd ]

let () = exit (Cmd.eval main_cmd)
