module C = Numerics.Complexd
module Cvec = Numerics.Cvec
let () =
  let n = 32 and m = 200 in
  let rng = Random.State.make [| 5 |] in
  let omega () = Array.init m (fun _ -> Random.State.float rng (2.0 *. Float.pi) -. Float.pi) in
  let ox = omega () and oy = omega () in
  let values = Cvec.init m (fun _ ->
      C.make (Random.State.float rng 2.0 -. 1.0) (Random.State.float rng 2.0 -. 1.0)) in
  let exact = Nufft.Nudft.adjoint_2d ~n ~omega_x:ox ~omega_y:oy ~values in
  List.iter (fun w ->
    let plan = Nufft.Plan.make ~n ~w ~l:2048 () in
    let g = plan.Nufft.Plan.g in
    let s = Nufft.Sample.of_omega_2d ~g ~omega_x:ox ~omega_y:oy ~values in
    let kb = Nufft.Plan.adjoint_2d plan s in
    let mm = Nufft.Minmax.adjoint_2d ~n ~g ~w ~gx:s.Nufft.Sample.gx ~gy:s.Nufft.Sample.gy values in
    let mmk = Nufft.Minmax.adjoint_2d ~scaling:Nufft.Minmax.Kaiser_bessel_scaling
        ~n ~g ~w ~gx:s.Nufft.Sample.gx ~gy:s.Nufft.Sample.gy values in
    Printf.printf "w=%d  KB %.3e   mm-uniform %.3e   mm-kb-scaled %.3e\n"
      w (Cvec.nrmsd ~reference:exact kb) (Cvec.nrmsd ~reference:exact mm)
      (Cvec.nrmsd ~reference:exact mmk)) [2;4;6]
