(* Figure 8: energy of the gridding implementations.

   Paper: Impatient averages 1.95 J, Slice-and-Dice GPU 108.27 mJ, JIGSAW
   83.89 uJ — i.e. ~23000x less than Impatient and ~1300x less than
   Slice-and-Dice GPU for the ASIC. GPU energies come from the simulator's
   activity-scaled board-power model; JIGSAW's from the synthesised power
   (Table II) times its cycle-exact runtime. *)

let run () =
  Printf.printf "\n=== Figure 8: gridding energy ===\n";
  Printf.printf "%-28s %14s %14s %14s | %12s %12s\n" "dataset" "binned(mJ)"
    "slice(mJ)" "jigsaw(uJ)" "bin/jig" "slice/jig";
  let rows = List.map Perf_models.gridding_row (Bench_data.images ()) in
  let ratios =
    List.map
      (fun r ->
        let e_binned =
          r.Perf_models.binned_result.Gpusim.Sim.energy_j
          +. r.Perf_models.presort_result.Gpusim.Sim.energy_j
        in
        let e_slice = r.Perf_models.slice_result.Gpusim.Sim.energy_j in
        let cfg = Perf_models.jigsaw_config r.Perf_models.ds in
        let e_jigsaw =
          Jigsaw.Synthesis.energy_j
            ~cycles:
              (r.Perf_models.ds.Bench_data.m
              + cfg.Jigsaw.Config.pipeline_depth_2d)
            ~clock_ghz:cfg.Jigsaw.Config.clock_ghz ()
        in
        Printf.printf "%-28s %14.3f %14.3f %14.2f | %12.0f %12.0f\n"
          (Bench_data.label r.Perf_models.ds)
          (1e3 *. e_binned) (1e3 *. e_slice) (1e6 *. e_jigsaw)
          (e_binned /. e_jigsaw) (e_slice /. e_jigsaw);
        (e_binned /. e_jigsaw, e_slice /. e_jigsaw))
      rows
  in
  Printf.printf
    "geomean energy reductions: jigsaw vs binned %.0fx (paper ~23000x), \
     jigsaw vs slice GPU %.0fx (paper ~1300x)\n"
    (Perf_models.geomean (List.map fst ratios))
    (Perf_models.geomean (List.map snd ratios))
