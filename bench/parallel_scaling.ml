(* Parallel scaling of the domain-pool runtime (lib/runtime/pool.ml).

   Three workloads, each timed for pools of 1, 2, 4 and 8 domains against
   its serial engine:

   - 2D slice-and-dice gridding (g=256, t=8, M=65536 radial samples): the
     t^2 dice columns are distributed over the pool, mirroring the paper's
     T^2 parallel workers;
   - 3D sliced gridding (g=64): one z-slice per work item;
   - batched row/column FFT (256 x 256): the lines of each pass are
     chunked over the pool.

   All three are bit-identical to serial by construction (column-, slice-
   and line-private writes), which the run re-verifies. Speedups above 1
   require actual cores: on a single-core host every pool size degenerates
   to roughly serial time plus coordination overhead, which this bench
   then measures instead.

   Usage: parallel_scaling.exe [--quick]  (quick: ~1/4 of the samples) *)

module Cvec = Numerics.Cvec
module C = Numerics.Complexd
module Pool = Runtime.Pool

let domain_counts = [ 1; 2; 4; 8 ]
let reps = 3

let time_best f =
  let best = ref infinity in
  let result = ref None in
  for _ = 1 to reps do
    let t0 = Unix.gettimeofday () in
    let r = f () in
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt;
    result := Some r
  done;
  (Option.get !result, !best)

let max_dev ~reference v =
  let m = ref 0.0 in
  for i = 0 to Cvec.length v - 1 do
    let d = C.norm (C.sub (Cvec.get v i) (Cvec.get reference i)) in
    if d > !m then m := d
  done;
  !m

(* One row per pool size: time, speedup vs the serial baseline, and the
   worst element-wise deviation from the serial result. *)
let scaling_table ~label ~serial_s ~reference run =
  Printf.printf "  %-10s %12s %9s %12s\n" "domains" "time(ms)" "speedup"
    "max|dev|";
  List.iter
    (fun d ->
      let pool = Pool.create ~domains:d () in
      let out, dt =
        Fun.protect
          ~finally:(fun () -> Pool.shutdown pool)
          (fun () -> time_best (fun () -> run pool))
      in
      let dev = max_dev ~reference out in
      Printf.printf "  %-10d %12.3f %8.2fx %12.2e\n" d (dt *. 1000.0)
        (serial_s /. dt) dev;
      if dev > 1e-9 then
        failwith (Printf.sprintf "%s: pool of %d deviates from serial" label d))
    domain_counts

let radial_samples ~g ~spokes ~readout =
  let traj = Trajectory.Radial.make ~spokes ~readout () in
  let m = Trajectory.Traj.length traj in
  let rng = Random.State.make [| 2026 |] in
  let values =
    Cvec.init m (fun j ->
        let r = Trajectory.Traj.radius traj j /. Float.pi in
        let mag = 1.0 /. (1.0 +. (10.0 *. r *. r)) in
        C.scale mag (C.exp_i (Random.State.float rng (2.0 *. Float.pi))))
  in
  Nufft.Sample.of_omega_2d ~g ~omega_x:traj.Trajectory.Traj.omega_x
    ~omega_y:traj.Trajectory.Traj.omega_y ~values

let bench_grid_2d ~quick table =
  let g = 256 and t = 8 in
  let readout = if quick then 128 else 256 in
  let s = radial_samples ~g ~spokes:256 ~readout in
  let gx = (Nufft.Sample.gx s)
  and gy = (Nufft.Sample.gy s)
  and values = s.Nufft.Sample.values in
  Printf.printf "\n== 2D slice-and-dice gridding: g=%d, t=%d, M=%d ==\n" g t
    (Nufft.Sample.length s);
  let reference, serial_s =
    time_best (fun () -> Nufft.Gridding_serial.grid_2d ~table ~g ~gx ~gy values)
  in
  Printf.printf "  serial: %.3f ms\n" (serial_s *. 1000.0);
  scaling_table ~label:"grid_2d" ~serial_s ~reference (fun pool ->
      Nufft.Gridding_slice.grid_2d_parallel ~pool ~table ~g ~t ~gx ~gy values)

let bench_grid_3d ~quick table =
  let g = 64 in
  let m = if quick then 8_000 else 30_000 in
  let rng = Random.State.make [| 41 |] in
  let coord () = Array.init m (fun _ -> Random.State.float rng (float_of_int g)) in
  let gx = coord () and gy = coord () and gz = coord () in
  let values =
    Cvec.init m (fun _ ->
        C.make
          (Random.State.float rng 2.0 -. 1.0)
          (Random.State.float rng 2.0 -. 1.0))
  in
  Printf.printf "\n== 3D sliced gridding: g=%d, M=%d ==\n" g m;
  let reference, serial_s =
    time_best (fun () ->
        Nufft.Gridding3d.grid_3d_sliced ~table ~g ~gx ~gy ~gz values)
  in
  Printf.printf "  serial (sliced): %.3f ms\n" (serial_s *. 1000.0);
  scaling_table ~label:"grid_3d" ~serial_s ~reference (fun pool ->
      Nufft.Gridding3d.grid_3d_parallel ~pool ~table ~g ~gx ~gy ~gz values)

let bench_fft ~quick =
  let n = if quick then 128 else 256 in
  let rng = Random.State.make [| 7 |] in
  let input =
    Cvec.init (n * n) (fun _ ->
        C.make
          (Random.State.float rng 2.0 -. 1.0)
          (Random.State.float rng 2.0 -. 1.0))
  in
  Printf.printf "\n== 2D FFT, line-batched: %d x %d ==\n" n n;
  let reference, serial_s =
    time_best (fun () ->
        let v = Cvec.copy input in
        Fft.Fftnd.transform_2d Fft.Dft.Forward ~nx:n ~ny:n v;
        v)
  in
  Printf.printf "  serial: %.3f ms\n" (serial_s *. 1000.0);
  scaling_table ~label:"fft_2d" ~serial_s ~reference (fun pool ->
      let v = Cvec.copy input in
      Fft.Fftnd.transform_2d ~pool Fft.Dft.Forward ~nx:n ~ny:n v;
      v)

let () =
  let quick = Array.exists (( = ) "--quick") Sys.argv in
  Printf.printf "domain-pool scaling (host reports %d recommended domain(s))\n"
    (Domain.recommended_domain_count ());
  let kernel = Numerics.Window.default_kaiser_bessel ~width:6 ~sigma:2.0 in
  let table = Numerics.Weight_table.make ~kernel ~width:6 ~l:512 () in
  bench_grid_2d ~quick table;
  bench_grid_3d ~quick table;
  bench_fft ~quick;
  Printf.printf "\nall parallel results matched serial to <= 1e-9\n"
