(* Per-backend operator benchmark: one adjoint application through every
   registered 2D backend on a shared dataset, reporting the stage timings
   the operator interface collects (and simulated cycle counts for the
   gpusim-replayed backends). With [json := true] the results are also
   written to BENCH_operators.json so the perf trajectory can be tracked
   across revisions. *)

module Op = Nufft.Operator

let json = ref false
let json_path = "BENCH_operators.json"

type row = {
  backend : string;
  adjoint_s : float;
  gridding_s : float;
  fft_s : float;
  deapod_s : float;
  cycles : int;
  rel_l2_err : float;
}

let measure_backend ds name =
  let ctx =
    Op.context ~w:Bench_data.w ~n:ds.Bench_data.n
      ~coords:ds.Bench_data.samples ()
  in
  let op = Op.create name ctx in
  ignore (Op.apply_adjoint op ds.Bench_data.samples);
  let st = Op.stats_of op in
  (* The bench dataset is far beyond the exact NuDFT's O(M n^2) reach, so
     the accuracy column is measured on Accuracy's small canonical
     problem with the same backend (and the default plan geometry). *)
  let rel_l2_err = Imaging.Accuracy.backend_rel_l2_err name in
  { backend = name;
    adjoint_s = st.Op.adjoint_s;
    gridding_s = st.Op.gridding_s;
    fft_s = st.Op.fft_s;
    deapod_s = st.Op.deapod_s;
    cycles = st.Op.cycles;
    rel_l2_err }

let write_json ds rows =
  let oc = open_out json_path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"dataset\": %S,\n" ds.Bench_data.name;
  p "  \"n\": %d,\n" ds.Bench_data.n;
  p "  \"g\": %d,\n" ds.Bench_data.g;
  p "  \"m\": %d,\n" ds.Bench_data.m;
  p "  \"backends\": [\n";
  List.iteri
    (fun i r ->
      p "    { \"name\": %S, \"adjoint_s\": %.6f, \"gridding_s\": %.6f,\n"
        r.backend r.adjoint_s r.gridding_s;
      p "      \"fft_s\": %.6f, \"deapod_s\": %.6f, \"cycles\": %d,\n" r.fft_s
        r.deapod_s r.cycles;
      p "      \"rel_l2_err\": %.6e }%s\n" r.rel_l2_err
        (if i < List.length rows - 1 then "," else ""))
    rows;
  p "  ]\n";
  p "}\n";
  close_out oc;
  Printf.printf "  wrote %s\n" json_path

let run () =
  Jigsaw.Operator_backend.register ();
  Gpusim.Operator_backend.register ();
  let ds =
    Bench_data.load
      (let d = Trajectory.Dataset.by_name "Image 2" in
       if !Bench_data.quick then Trajectory.Dataset.small_variant d else d)
  in
  Printf.printf "\n=== Operator backends: one adjoint on %s ===\n"
    (Bench_data.label ds);
  Printf.printf "  %-16s %10s %10s %8s %8s %12s %11s\n" "backend" "adjoint ms"
    "gridding" "fft" "deapod" "cycles" "rel_l2_err";
  let rows =
    List.map
      (fun name ->
        let r = measure_backend ds name in
        Printf.printf "  %-16s %10.3f %10.3f %8.3f %8.3f %12s %11.2e\n"
          r.backend (1e3 *. r.adjoint_s) (1e3 *. r.gridding_s)
          (1e3 *. r.fft_s) (1e3 *. r.deapod_s)
          (if r.cycles > 0 then string_of_int r.cycles else "-")
          r.rel_l2_err;
        r)
      (Op.names ~dims:2 ())
  in
  if !json then write_json ds rows
