(* Closed-loop load bench for the serving tier with open-loop arrival
   accounting.

   Each client thread owns one persistent connection and a deterministic
   arrival schedule: request [k] (globally interleaved across threads)
   is due at [start + k / rate]. A thread sleeps until the next arrival
   is due, then sends and blocks for the response — but latency is
   measured from the *scheduled* arrival, not the send, so when the
   server falls behind the queueing delay is charged to the server
   rather than silently absorbed by the generator (no coordinated
   omission).

   The harness sweeps a geometric ladder of offered rates until goodput
   stops keeping up (completions below 90% of offered, or the server
   starts shedding); the last keeping-up rung is the saturation point.
   It then runs an overload leg — back-to-back requests from twice the
   client count, the closed-loop limit of demand — and asserts the
   admission queue answers the overflow with typed [Shed] statuses
   rather than stalls or disconnects. Finally (self-hosted mode only) it
   drains the server under in-flight load and times the drain.

   Results go to BENCH_serve.json (schema "serve-1", one object per
   line, same no-JSON-library convention as BENCH_hotpath.json);
   check_serve.exe re-reads the file and enforces the structural
   invariants, so CI fails when the serving tier stops shedding or
   draining cleanly.

   Default is fully self-hosted: an in-process server on an ephemeral
   loopback port with a deliberately small admission queue. [--port]
   targets an already-running [jigsaw serve] instead (the CI smoke job
   does this); the drain leg is skipped there since the bench does not
   own the server's lifecycle. *)

module P = Serving.Protocol
module C = Serving.Client
module S = Serving.Server
module Prom = Serving.Prometheus

let now = Unix.gettimeofday

(* ------------------------------------------------------------------ *)
(* Workload: a small but real 2-D adjoint reconstruction, round-robined
   over a handful of tenants so the plan-cache sharding is exercised.  *)

let tenants = [| "alice"; "bob"; "carol"; "dave" |]

let recon_n = 16

let make_request ~m k =
  let tenant = tenants.(k mod Array.length tenants) in
  { P.tenant;
    backend = "";
    transform = Nufft.Transform.Type1;
    n = recon_n;
    dims = 2;
    method_ = P.Adjoint;
    tol = None;
    family = None;
    omega =
      [| Array.init m (fun j ->
             -3.0 +. (6.0 *. float_of_int j /. float_of_int m));
         Array.init m (fun j ->
             3.0 -. (6.0 *. float_of_int j /. float_of_int m)) |];
    values = Array.init (2 * m) (fun j -> float_of_int ((j mod 13) + 1));
    density = None }

(* ------------------------------------------------------------------ *)
(* Per-leg tallies *)

type tally = {
  mutable ok : int;
  mutable shed : int;
  mutable errors : int;
  mutable latencies : float list;  (** seconds, successful requests *)
  mutable last_finish : float;
}

let new_tally () =
  { ok = 0; shed = 0; errors = 0; latencies = []; last_finish = 0.0 }

let merge ts =
  let t = new_tally () in
  Array.iter
    (fun s ->
      t.ok <- t.ok + s.ok;
      t.shed <- t.shed + s.shed;
      t.errors <- t.errors + s.errors;
      t.latencies <- List.rev_append s.latencies t.latencies;
      if s.last_finish > t.last_finish then t.last_finish <- s.last_finish)
    ts;
  t

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else
    let idx = int_of_float (Float.round (p *. float_of_int (n - 1))) in
    sorted.(max 0 (min (n - 1) idx))

let classify t ~scheduled = function
  | Ok (P.Recon_ok _) ->
      let fin = now () in
      t.ok <- t.ok + 1;
      t.latencies <- (fin -. scheduled) :: t.latencies;
      t.last_finish <- fin;
      true
  | Ok (P.Err (P.Shed, _)) ->
      t.shed <- t.shed + 1;
      t.last_finish <- now ();
      true
  | Ok _ ->
      t.errors <- t.errors + 1;
      true
  | Error _ ->
      t.errors <- t.errors + 1;
      false (* connection no longer trustworthy *)

(* One open-loop leg at a fixed offered rate. *)
let run_rate ~host ~port ~clients ~m ~rate ~duration =
  let start = now () +. 0.05 in
  let tallies = Array.init clients (fun _ -> new_tally ()) in
  let threads =
    Array.init clients (fun c ->
        Thread.create
          (fun () ->
            let t = tallies.(c) in
            let conn = ref (Some (C.connect ~host ~port ())) in
            let k = ref c in
            let deadline = start +. duration in
            (try
               while start +. (float_of_int !k /. rate) < deadline do
                 let scheduled = start +. (float_of_int !k /. rate) in
                 let wait = scheduled -. now () in
                 if wait > 0.0 then Thread.delay wait;
                 (match !conn with
                 | None -> conn := Some (C.connect ~host ~port ())
                 | Some _ -> ());
                 (match !conn with
                 | Some cn ->
                     let req = P.Recon (make_request ~m !k) in
                     if not (classify t ~scheduled (C.call cn req)) then begin
                       C.close cn;
                       conn := None
                     end
                 | None -> ());
                 k := !k + clients
               done
             with Unix.Unix_error _ -> t.errors <- t.errors + 1);
            match !conn with Some cn -> C.close cn | None -> ())
          ())
  in
  Array.iter Thread.join threads;
  let t = merge tallies in
  let elapsed = Float.max duration (t.last_finish -. start) in
  let lat = Array.of_list t.latencies in
  Array.sort compare lat;
  ( t,
    float_of_int t.ok /. elapsed,
    1000.0 *. percentile lat 0.50,
    1000.0 *. percentile lat 0.99 )

(* Overload leg: back-to-back, no schedule — the closed-loop demand
   ceiling from [clients] concurrent connections. *)
let run_overload ~host ~port ~clients ~m ~duration =
  let start = now () in
  let tallies = Array.init clients (fun _ -> new_tally ()) in
  let sent = Array.make clients 0 in
  let threads =
    Array.init clients (fun c ->
        Thread.create
          (fun () ->
            let t = tallies.(c) in
            let conn = ref (Some (C.connect ~host ~port ())) in
            let k = ref c in
            (try
               while now () -. start < duration do
                 (match !conn with
                 | None -> conn := Some (C.connect ~host ~port ())
                 | Some _ -> ());
                 (match !conn with
                 | Some cn ->
                     sent.(c) <- sent.(c) + 1;
                     let req = P.Recon (make_request ~m !k) in
                     if
                       not (classify t ~scheduled:(now ()) (C.call cn req))
                     then begin
                       C.close cn;
                       conn := None
                     end
                 | None -> ());
                 k := !k + clients
               done
             with Unix.Unix_error _ -> t.errors <- t.errors + 1);
            match !conn with Some cn -> C.close cn | None -> ())
          ())
  in
  Array.iter Thread.join threads;
  let t = merge tallies in
  let attempts = Array.fold_left ( + ) 0 sent in
  (t, float_of_int attempts /. duration)

(* Drain leg (self-hosted only): fire [inflight] concurrent requests,
   immediately begin the drain, and check that every in-flight request
   is answered (completed or typed [Draining] if it lost the admission
   race) while a fresh connection is turned away. *)
let run_drain server ~host ~port ~m ~inflight =
  let results = Array.make inflight None in
  let threads =
    Array.init inflight (fun i ->
        Thread.create
          (fun () ->
            let c = C.connect ~host ~port () in
            Fun.protect
              ~finally:(fun () -> C.close c)
              (fun () ->
                results.(i) <- Some (C.call c (P.Recon (make_request ~m i)))))
          ())
  in
  Thread.delay 0.02;
  let t0 = now () in
  S.drain server;
  let drained = S.await_drained ~timeout_s:30.0 server in
  let drain_ms = 1000.0 *. (now () -. t0) in
  Array.iter Thread.join threads;
  let completed = ref 0 and rejected = ref 0 in
  Array.iter
    (fun r ->
      match r with
      | Some (Ok (P.Recon_ok _)) -> incr completed
      | Some (Ok (P.Err (P.Draining, _))) -> incr rejected
      | _ -> ())
    results;
  let new_conn_rejected =
    match C.connect ~host ~port () with
    | c ->
        let r =
          match C.call c (P.Recon (make_request ~m 0)) with
          | Ok (P.Err (P.Draining, _)) -> true
          | Ok (P.Err (P.Shed, _)) -> true
          | _ -> false
          | exception _ -> true
        in
        C.close c;
        r
    | exception Unix.Unix_error _ -> true
  in
  (drained, !completed, !rejected, drain_ms, new_conn_rejected)

(* ------------------------------------------------------------------ *)

type rate_row = {
  offered : float;
  completed : float;
  r_ok : int;
  r_shed : int;
  r_errors : int;
  p50_ms : float;
  p99_ms : float;
}

let write_json ~path ~quick ~mode ~clients ~m ~rows ~saturation
    ~overload:(ov_rps, ov : float * tally)
    ~drain ~metrics_valid =
  let oc = open_out path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"schema\": \"serve-1\",\n";
  p "  \"quick\": %b,\n" quick;
  p "  \"mode\": %S,\n" mode;
  p "  \"clients\": %d,\n" clients;
  p "  \"n\": %d,\n" recon_n;
  p "  \"m\": %d,\n" m;
  p "  \"rates\": [\n";
  let last = List.length rows - 1 in
  List.iteri
    (fun i r ->
      p
        "    { \"offered_rps\": %.1f, \"completed_rps\": %.1f, \"ok\": %d, \
         \"shed\": %d, \"errors\": %d, \"p50_ms\": %.3f, \"p99_ms\": %.3f \
         }%s\n"
        r.offered r.completed r.r_ok r.r_shed r.r_errors r.p50_ms r.p99_ms
        (if i = last then "" else ","))
    rows;
  p "  ],\n";
  p "  \"saturation_rps\": %.1f,\n" saturation;
  let ov_total = ov.ok + ov.shed + ov.errors in
  p
    "  \"overload\": { \"offered_rps\": %.1f, \"ok\": %d, \"shed\": %d, \
     \"errors\": %d, \"shed_pct\": %.1f },\n"
    ov_rps ov.ok ov.shed ov.errors
    (if ov_total = 0 then 0.0
     else 100.0 *. float_of_int ov.shed /. float_of_int ov_total);
  (match drain with
  | None -> ()
  | Some (drained, completed, rejected, drain_ms, new_conn_rejected) ->
      p
        "  \"drain\": { \"drained\": %b, \"inflight\": %d, \"completed\": \
         %d, \"rejected\": %d, \"drain_ms\": %.2f, \"new_conn_rejected\": \
         %b },\n"
        drained (completed + rejected) completed rejected drain_ms
        new_conn_rejected);
  p "  \"metrics_valid\": %b\n" metrics_valid;
  p "}\n";
  close_out oc

let () =
  let quick = ref false in
  let json_path = ref "BENCH_serve.json" in
  let ext_port = ref 0 in
  let host = ref "127.0.0.1" in
  let clients = ref 8 in
  let rec scan = function
    | [] -> ()
    | "--quick" :: rest ->
        quick := true;
        scan rest
    | "--json" :: v :: rest ->
        json_path := v;
        scan rest
    | "--port" :: v :: rest ->
        ext_port := int_of_string v;
        scan rest
    | "--host" :: v :: rest ->
        host := v;
        scan rest
    | "--clients" :: v :: rest ->
        clients := int_of_string v;
        scan rest
    | a :: _ ->
        Printf.eprintf
          "usage: load_bench.exe [--quick] [--json FILE] [--port P] \
           [--host H] [--clients N]  (unknown arg %s)\n"
          a;
        exit 2
  in
  scan (List.tl (Array.to_list Sys.argv));
  let quick = !quick in
  let clients = !clients in
  let m = if quick then 64 else 256 in
  let duration = if quick then 0.5 else 2.0 in
  let max_rungs = if quick then 7 else 9 in
  Telemetry.reset ();
  Telemetry.set_enabled true;
  let server, port, mode =
    if !ext_port > 0 then (None, !ext_port, "external")
    else begin
      (* deliberately small queue: the overload leg must overflow it *)
      let config =
        { S.default_config with
          queue_capacity = 4;
          workers = 2;
          read_timeout_s = 10.0;
          tenants =
            { Serving.Tenants.default_config with cache_entries = 4 } }
      in
      let t = S.create ~config () in
      S.start t;
      (Some t, S.port t, "inprocess")
    end
  in
  let host = !host in
  Printf.printf
    "=== Serving-tier load bench (%s, %s:%d, %d clients, m=%d, %.1fs per \
     rung) ===\n"
    mode host port clients m duration;
  Printf.printf "  %12s %14s %8s %8s %8s %10s %10s\n" "offered/s"
    "completed/s" "ok" "shed" "errors" "p50 ms" "p99 ms";
  (* geometric rate ladder until goodput stops keeping up *)
  let rows = ref [] in
  let saturation = ref 0.0 in
  let rate = ref 100.0 in
  let keep_going = ref true in
  let rung = ref 0 in
  while !keep_going && !rung < max_rungs do
    let t, completed_rps, p50_ms, p99_ms =
      run_rate ~host ~port ~clients ~m ~rate:!rate ~duration
    in
    let row =
      { offered = !rate; completed = completed_rps; r_ok = t.ok;
        r_shed = t.shed; r_errors = t.errors; p50_ms; p99_ms }
    in
    rows := row :: !rows;
    let keeping_up =
      t.errors = 0 && t.shed = 0 && completed_rps >= 0.9 *. !rate
    in
    Printf.printf "  %12.0f %14.1f %8d %8d %8d %10.3f %10.3f  %s\n" !rate
      completed_rps t.ok t.shed t.errors p50_ms p99_ms
      (if keeping_up then "ok" else "saturated");
    if keeping_up then begin
      saturation := !rate;
      rate := !rate *. 2.0
    end
    else keep_going := false;
    incr rung
  done;
  let rows = List.rev !rows in
  (* overload: closed-loop ceiling from twice the client count; the
     admission queue must answer the overflow with typed sheds *)
  let ov, ov_rps =
    run_overload ~host ~port ~clients:(2 * clients) ~m ~duration
  in
  Printf.printf
    "  overload (%d back-to-back clients): %.0f attempts/s, %d ok, %d \
     shed, %d errors\n"
    (2 * clients) ov_rps ov.ok ov.shed ov.errors;
  (* the observability plane must survive the overload it just served *)
  let metrics_valid =
    let c = C.connect ~host ~port () in
    Fun.protect
      ~finally:(fun () -> C.close c)
      (fun () ->
        match C.metrics c with
        | Ok text -> (
            match Prom.validate text with
            | Ok (samples, _types) ->
                Prom.find samples "srv_requests_total" <> None
            | Error e ->
                Printf.printf "  metrics INVALID: %s\n" e;
                false)
        | Error e ->
            Printf.printf "  metrics scrape failed: %s\n"
              (C.call_error_message e);
            false)
  in
  Printf.printf "  metrics exposition: %s\n"
    (if metrics_valid then "valid" else "INVALID");
  let drain =
    match server with
    | None -> None
    | Some t ->
        let ((drained, completed, rejected, drain_ms, new_rej) as d) =
          run_drain t ~host ~port ~m ~inflight:4
        in
        Printf.printf
          "  drain: %s in %.2f ms (%d completed, %d rejected typed, new \
           connection %s)\n"
          (if drained then "clean" else "TIMED OUT")
          drain_ms completed rejected
          (if new_rej then "rejected" else "ACCEPTED");
        ignore (S.stop ~timeout_s:30.0 t);
        Some d
  in
  Printf.printf "  saturation: %.0f req/s\n" !saturation;
  write_json ~path:!json_path ~quick ~mode ~clients ~m ~rows
    ~saturation:!saturation ~overload:(ov_rps, ov) ~drain ~metrics_valid;
  Printf.printf "  wrote %s\n" !json_path
