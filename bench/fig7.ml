(* Figure 7: end-to-end NuFFT speedups normalised to the CPU baseline.

   End-to-end = gridding + oversampled 2D FFT (apodization is negligible
   and identical across systems). The CPU pipeline uses our measured FFT;
   the GPU/ASIC pipelines use the cuFFT-class throughput model of
   Perf_models (the paper's GPU implementations and JIGSAW all rely on the
   GPU FFT, which is why JIGSAW's end-to-end gain (36x vs Impatient) is far
   below its gridding gain (95x): the FFT finally becomes the
   bottleneck). *)

let run () =
  Printf.printf "\n=== Figure 7: end-to-end NuFFT speedups (normalized to CPU baseline) ===\n";
  Printf.printf "%-28s %11s %11s %11s %11s | %8s %8s %8s | %s\n" "dataset"
    "cpu(ms)" "binned(ms)" "slice(ms)" "jigsaw(ms)" "binned_x" "slice_x"
    "jigsaw_x" "grid%jig";
  let rows = List.map Perf_models.gridding_row (Bench_data.images ()) in
  let speedups =
    List.map
      (fun r ->
        let g = r.Perf_models.ds.Bench_data.g in
        let cpu_fft = Perf_models.cpu_fft_2d_s ~g in
        let gpu_fft = Perf_models.gpu_fft_2d_s ~g in
        let cpu = r.Perf_models.cpu_s +. cpu_fft in
        let binned = r.Perf_models.binned_s +. gpu_fft in
        let slice = r.Perf_models.slice_s +. gpu_fft in
        let jigsaw = r.Perf_models.jigsaw_s +. gpu_fft in
        let frac = r.Perf_models.jigsaw_s /. jigsaw in
        Printf.printf
          "%-28s %11.3f %11.3f %11.3f %11.3f | %8.1f %8.1f %8.1f | %5.0f%%\n"
          (Bench_data.label r.Perf_models.ds)
          (1e3 *. cpu) (1e3 *. binned) (1e3 *. slice) (1e3 *. jigsaw)
          (cpu /. binned) (cpu /. slice) (cpu /. jigsaw) (100.0 *. frac);
        (cpu /. binned, cpu /. slice, cpu /. jigsaw, frac,
         r.Perf_models.slice_s /. gpu_fft))
      rows
  in
  let g f = Perf_models.geomean (List.map f speedups) in
  Printf.printf
    "geomean end-to-end speedups: binned %.1fx  slice %.1fx  jigsaw %.1fx\n"
    (g (fun (b, _, _, _, _) -> b))
    (g (fun (_, s, _, _, _) -> s))
    (g (fun (_, _, j, _, _) -> j));
  Printf.printf
    "slice gridding/FFT balance: %.2f (paper: ~1, \"equal gridding and FFT \
     computation time\")\n"
    (g (fun (_, _, _, _, ratio) -> ratio));
  Printf.printf
    "jigsaw gridding share of end-to-end: %.0f%% (paper: ~25%%, \"FFT the \
     bottleneck for the first time\")\n"
    (100.0 *. g (fun (_, _, _, f, _) -> f))
