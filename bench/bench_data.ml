(* Materialised evaluation datasets: the five images of Figures 6-8 as
   sample sets with seeded random k-space values, plus reduced variants for
   quick runs. Generation is cached so every experiment sees identical
   data. *)

module Cvec = Numerics.Cvec
module C = Numerics.Complexd

type t = {
  name : string;
  n : int;  (** image dimension *)
  g : int;  (** oversampled grid (sigma = 2) *)
  m : int;
  samples : Nufft.Sample.t2;
  description : string;
}

let sigma = 2.0
let w = 6

(* K-space magnitudes decay with radius like real anatomy; keeps the
   fixed-point accumulators well inside their range too. *)
let values_for traj =
  let m = Trajectory.Traj.length traj in
  let rng = Random.State.make [| 2026 |] in
  Cvec.init m (fun j ->
      let r = Trajectory.Traj.radius traj j /. Float.pi in
      let mag = 1.0 /. (1.0 +. (10.0 *. r *. r)) in
      let phase = Random.State.float rng (2.0 *. Float.pi) in
      C.scale mag (C.exp_i phase))

let of_dataset (d : Trajectory.Dataset.t) =
  let traj = d.Trajectory.Dataset.trajectory () in
  let g = int_of_float (sigma *. float_of_int d.Trajectory.Dataset.n) in
  let samples =
    Nufft.Sample.of_omega_2d ~g ~omega_x:traj.Trajectory.Traj.omega_x
      ~omega_y:traj.Trajectory.Traj.omega_y ~values:(values_for traj)
  in
  { name = d.Trajectory.Dataset.name;
    n = d.Trajectory.Dataset.n;
    g;
    m = d.Trajectory.Dataset.m;
    samples;
    description = d.Trajectory.Dataset.description }

let cache : (string, t) Hashtbl.t = Hashtbl.create 8

let load d =
  let key = d.Trajectory.Dataset.name in
  match Hashtbl.find_opt cache key with
  | Some v -> v
  | None ->
      let v = of_dataset d in
      Hashtbl.add cache key v;
      v

let quick = ref false

let images () =
  let base = Trajectory.Dataset.all in
  let base =
    if !quick then List.map Trajectory.Dataset.small_variant base else base
  in
  List.map load base

let label ds = Printf.sprintf "%s N=%dx%d M=%d" ds.name ds.n ds.n ds.m
