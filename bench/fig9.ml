(* Figure 9: reconstruction quality across numeric representations.

   The paper reconstructs 2D liver slices with (a) table oversampling
   L=1024 in double precision and (b) L=32 in 16-bit fixed point, finds
   them visually indistinguishable, and reports NRMSD of 0.047% for 32-bit
   floating point and 0.012% for the 32-bit fixed-point pipeline, both vs
   the double-precision Matlab reference.

   We reconstruct the Shepp-Logan phantom from a fully sampled radial
   acquisition (density-compensated so the fixed-point accumulators stay
   in range, as a real host would) and compare:
     reference : double gridding, L=1024 table
     float32   : simulated single-precision gridding, L=1024 table
     jigsaw    : the fixed-point hardware engine, L=32, Q1.15 weights
   The gridded k-space of each variant goes through the identical double
   FFT + deapodization, isolating gridding numerics. PGM images of the
   reference and fixed-point reconstructions are written next to the
   benchmark for the visual half of the figure. *)

module Cvec = Numerics.Cvec
module C = Numerics.Complexd
module Wt = Numerics.Weight_table

let n = 128

let reconstruct_from_grid plan grid =
  let g = plan.Nufft.Plan.g in
  Fft.Fftnd.transform_2d Fft.Dft.Inverse ~nx:g ~ny:g grid;
  let image = Cvec.create (n * n) in
  for iy = 0 to n - 1 do
    for ix = 0 to n - 1 do
      let cx = ix - (n / 2) and cy = iy - (n / 2) in
      let src = (Nufft.Coord.wrap ~g cy * g) + Nufft.Coord.wrap ~g cx in
      Cvec.set image ((iy * n) + ix)
        (C.scale
           (1.0
           /. (plan.Nufft.Plan.deapod.(ix) *. plan.Nufft.Plan.deapod.(iy)))
           (Cvec.get grid src))
    done
  done;
  image

let run () =
  Printf.printf "\n=== Figure 9: image quality vs numeric representation ===\n";
  let w = Bench_data.w in
  let kernel = Numerics.Window.default_kaiser_bessel ~width:w ~sigma:2.0 in
  let plan = Nufft.Plan.make ~n ~w ~l:1024 () in
  let g = plan.Nufft.Plan.g in
  let phantom = Imaging.Phantom.make ~n () in
  let traj =
    Trajectory.Radial.make
      ~spokes:(Trajectory.Radial.fully_sampled_spokes ~n)
      ~readout:(2 * n) ()
  in
  let samples = Imaging.Recon.acquire plan traj phantom in
  (* Density-compensate and normalise so |values| <= 1: what a host feeds
     fixed-point hardware. *)
  let dcf = Trajectory.Radial.density_weights traj in
  let m = Nufft.Sample.length samples in
  let peak = ref 0.0 in
  for j = 0 to m - 1 do
    let v = C.norm (Cvec.get samples.Nufft.Sample.values j) *. dcf.(j) in
    if v > !peak then peak := v
  done;
  let values =
    Cvec.init m (fun j ->
        C.scale (dcf.(j) /. !peak) (Cvec.get samples.Nufft.Sample.values j))
  in
  let gx = (Nufft.Sample.gx samples) and gy = (Nufft.Sample.gy samples) in
  (* Reference: double, L=1024. *)
  let table_ref = Wt.make ~kernel ~width:w ~l:1024 () in
  let grid_ref = Nufft.Gridding_serial.grid_2d ~table:table_ref ~g ~gx ~gy values in
  let img_ref = reconstruct_from_grid plan (Cvec.copy grid_ref) in
  (* 32-bit float, L=1024 (the GPU implementations' numerics). *)
  let table_f32 = Wt.make ~precision:Wt.Single ~kernel ~width:w ~l:1024 () in
  let grid_f32 =
    Nufft.Gridding_serial.grid_2d ~precision:`Single ~table:table_f32 ~g ~gx
      ~gy values
  in
  let img_f32 = reconstruct_from_grid plan (Cvec.copy grid_f32) in
  (* JIGSAW: 32-bit fixed point, L=32, Q1.15 weights. *)
  let cfg = Jigsaw.Config.make ~n:g ~w ~l:32 () in
  let table_fx = Wt.make ~precision:Wt.Fixed16 ~kernel ~width:w ~l:32 () in
  let engine = Jigsaw.Engine2d.create cfg ~table:table_fx in
  Jigsaw.Engine2d.stream engine ~gx ~gy values;
  let grid_fx = Jigsaw.Engine2d.readout engine in
  let img_fx = reconstruct_from_grid plan (Cvec.copy grid_fx) in
  (* Also JIGSAW at its maximum table resolution, L=64. *)
  let cfg64 = Jigsaw.Config.make ~n:g ~w ~l:64 () in
  let table_fx64 = Wt.make ~precision:Wt.Fixed16 ~kernel ~width:w ~l:64 () in
  let engine64 = Jigsaw.Engine2d.create cfg64 ~table:table_fx64 in
  Jigsaw.Engine2d.stream engine64 ~gx ~gy values;
  let img_fx64 = reconstruct_from_grid plan (Cvec.copy (Jigsaw.Engine2d.readout engine64)) in
  let report name img =
    Printf.printf "  %-34s NRMSD vs double/L=1024: %8.4f%%\n" name
      (Imaging.Metrics.nrmsd_percent ~reference:img_ref img)
  in
  Printf.printf "  dataset: %dx%d phantom, %d radial samples, W=%d\n" n n m w;
  report "float32 gridding, L=1024" img_f32;
  report "JIGSAW 32-bit fixed, L=32" img_fx;
  report "JIGSAW 32-bit fixed, L=64" img_fx64;
  Printf.printf
    "  (paper: float32 0.047%%, 32-bit fixed 0.012%%; shape target: both \
     well under 1%%, images indistinguishable)\n";
  Printf.printf "  jigsaw accumulator saturations: %d (must be 0)\n"
    (Jigsaw.Engine2d.saturation_events engine);
  Imaging.Pgm.write_magnitude ~path:"fig9_reference.pgm" ~n img_ref;
  Imaging.Pgm.write_magnitude ~path:"fig9_fixed_point.pgm" ~n img_fx;
  Printf.printf
    "  wrote fig9_reference.pgm / fig9_fixed_point.pgm for visual \
     comparison\n"
