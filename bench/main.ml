(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md's experiment index), plus Bechamel
   micro-benchmarks of the CPU-measurable kernels behind them.

   Usage:
     main.exe                 run everything (full datasets)
     main.exe --quick [...]   use reduced datasets (~1/16 of the samples)
     main.exe --json [...]    also emit BENCH_operators.json (operators) /
                              BENCH_hotpath.json (hotpath) /
                              BENCH_tuner.json (tuner)
     main.exe fig6|fig7|fig8|fig9|fig3|table1|table2|fraction|gpustats|
              slice3d|ablation|operators|hotpath|tuner
     main.exe bechamel        only the Bechamel micro-benchmarks *)

let experiments =
  [ ("fig6", Fig6.run);
    ("fig7", Fig7.run);
    ("fig8", Fig8.run);
    ("fig9", Fig9.run);
    ("fig3", Fig3.run);
    ("table1", Table1.run);
    ("table2", Table2.run);
    ("fraction", Fraction.run);
    ("gpustats", Gpustats.run);
    ("slice3d", Slice3d.run);
    ("ablation", Ablation.run);
    ("operators", Operators_bench.run);
    ("hotpath", Hotpath_bench.run);
    ("tuner", Tuner_bench.run) ]

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per experiment's measured
   CPU kernel. *)

let bechamel_tests () =
  let open Bechamel in
  let table = Perf_models.table_for () in
  let small =
    Bench_data.load
      (Trajectory.Dataset.small_variant (Trajectory.Dataset.by_name "Image 2"))
  in
  let s = small.Bench_data.samples in
  let g = small.Bench_data.g in
  let grid_with engine () =
    ignore
      (Nufft.Gridding.grid_2d engine ~table ~g ~gx:(Nufft.Sample.gx s)
         ~gy:(Nufft.Sample.gy s) s.Nufft.Sample.values)
  in
  let fft_buf = Numerics.Cvec.create (256 * 256) in
  let jigsaw_cfg = Jigsaw.Config.make ~n:g ~w:Bench_data.w ~l:32 () in
  let jigsaw_table =
    Perf_models.table_for ~precision:Numerics.Weight_table.Fixed16 ~l:32 ()
  in
  Test.make_grouped ~name:"jigsaw-repro"
    [ Test.make ~name:"fig6.cpu-serial-gridding"
        (Staged.stage (grid_with Nufft.Gridding.Serial));
      Test.make ~name:"fig6.binned-gridding-cpu"
        (Staged.stage (grid_with (Nufft.Gridding.Binned 8)));
      Test.make ~name:"fig6.slice-and-dice-cpu"
        (Staged.stage (grid_with (Nufft.Gridding.Slice_and_dice 8)));
      Test.make ~name:"fig7.fft-256x256"
        (Staged.stage (fun () ->
             Fft.Fftnd.transform_2d Fft.Dft.Forward ~nx:256 ~ny:256 fft_buf));
      Test.make ~name:"fig9.float32-gridding"
        (Staged.stage (fun () ->
             ignore
               (Nufft.Gridding_serial.grid_2d ~precision:`Single ~table ~g
                  ~gx:(Nufft.Sample.gx s) ~gy:(Nufft.Sample.gy s)
                  s.Nufft.Sample.values)));
      Test.make ~name:"fig9.jigsaw-fixed-point-model"
        (Staged.stage (fun () ->
             let e = Jigsaw.Engine2d.create jigsaw_cfg ~table:jigsaw_table in
             Jigsaw.Engine2d.stream e ~gx:(Nufft.Sample.gx s)
               ~gy:(Nufft.Sample.gy s) s.Nufft.Sample.values));
      Test.make ~name:"fig3.boundary-check-decomposition"
        (Staged.stage (fun () ->
             for j = 0 to Array.length (Nufft.Sample.gx s) - 1 do
               for column = 0 to 7 do
                 ignore
                   (Nufft.Coord.column_check ~w:Bench_data.w ~t:8 ~g ~column
                      (Nufft.Sample.gx s).(j))
               done
             done)) ]

let run_bechamel () =
  let open Bechamel in
  Printf.printf "\n=== Bechamel micro-benchmarks (ns per run) ===\n%!";
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.5) ~kde:None () in
  let raw =
    Benchmark.all cfg
      Toolkit.Instance.[ monotonic_clock ]
      (bechamel_tests ())
  in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name o acc -> (name, o) :: acc) results [] in
  List.iter
    (fun (name, o) ->
      match Analyze.OLS.estimates o with
      | Some (t :: _) -> Printf.printf "  %-48s %14.1f ns/run\n" name t
      | _ -> Printf.printf "  %-48s %14s\n" name "n/a")
    (List.sort compare rows)

(* ------------------------------------------------------------------ *)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let args =
    if List.mem "--quick" args then begin
      Bench_data.quick := true;
      List.filter (fun a -> a <> "--quick") args
    end
    else args
  in
  let args =
    if List.mem "--json" args then begin
      Operators_bench.json := true;
      Hotpath_bench.json := true;
      Tuner_bench.json := true;
      List.filter (fun a -> a <> "--json") args
    end
    else args
  in
  Printf.printf "Jigsaw reproduction benchmark harness%s\n"
    (if !Bench_data.quick then " (quick datasets)" else "");
  match args with
  | [] ->
      List.iter (fun (_, f) -> f ()) experiments;
      run_bechamel ()
  | [ "bechamel" ] -> run_bechamel ()
  | names ->
      List.iter
        (fun name ->
          match List.assoc_opt name experiments with
          | Some f -> f ()
          | None ->
              Printf.eprintf "unknown experiment %S (known: %s, bechamel)\n"
                name
                (String.concat ", " (List.map fst experiments));
              exit 1)
        names
