(* Table I: JIGSAW's supported runtime parameter space.

   Reproduced as (1) a validation sweep — every in-range combination
   constructs, every out-of-range one is rejected — and (2) a functional
   sweep: for a lattice of (W, L) points the fixed-point engine's grid is
   compared against the double-precision reference, demonstrating the
   whole advertised range actually grids correctly. *)

module Wt = Numerics.Weight_table
module Cvec = Numerics.Cvec

let run () =
  Printf.printf "\n=== Table I: JIGSAW system parameter ranges ===\n";
  Printf.printf
    "  N 8-1024, T 8, W 1-8, L 1-64 (pow2), 32-bit pipeline, 16-bit weights\n";
  (* Validation sweep. *)
  let valid = ref 0 and rejected = ref 0 in
  List.iter
    (fun n ->
      List.iter
        (fun w ->
          List.iter
            (fun l ->
              match Jigsaw.Config.make ~n ~w ~l () with
              | _ -> incr valid
              | exception Invalid_argument _ -> incr rejected)
            [ 1; 2; 4; 8; 16; 32; 64 ])
        [ 1; 2; 3; 4; 5; 6; 7; 8 ])
    [ 8; 16; 64; 256; 1024 ];
  List.iter
    (fun mk ->
      match mk () with
      | _ -> failwith "Table1: out-of-range config accepted"
      | exception Invalid_argument _ -> incr rejected)
    [ (fun () -> Jigsaw.Config.make ~n:4 ());
      (fun () -> Jigsaw.Config.make ~n:2048 ());
      (fun () -> Jigsaw.Config.make ~n:64 ~w:0 ());
      (fun () -> Jigsaw.Config.make ~n:64 ~w:9 ());
      (fun () -> Jigsaw.Config.make ~n:64 ~l:128 ());
      (fun () -> Jigsaw.Config.make ~n:64 ~l:3 ()) ];
  Printf.printf "  validation sweep: %d in-range configs accepted, %d rejected\n"
    !valid !rejected;
  (* Functional sweep on a small grid. *)
  let g = 64 in
  let samples = Nufft.Sample.random_2d ~seed:404 ~g 400 in
  let q u = Float.round (u *. 65536.0) /. 65536.0 in
  let gx = Array.map q (Nufft.Sample.gx samples)
  and gy = Array.map q (Nufft.Sample.gy samples) in
  let values =
    (* Keep magnitudes modest for the fixed-point accumulators. *)
    Cvec.map (fun c -> Numerics.Complexd.scale 0.25 c)
      samples.Nufft.Sample.values
  in
  Printf.printf "  functional sweep (g=%d, m=400): NRMSD of engine vs double reference\n" g;
  Printf.printf "    %-4s" "W\\L";
  List.iter (fun l -> Printf.printf " %9d" l) [ 4; 16; 32; 64 ];
  Printf.printf "\n";
  List.iter
    (fun w ->
      Printf.printf "    %-4d" w;
      List.iter
        (fun l ->
          let kernel =
            Numerics.Window.default_kaiser_bessel ~width:w ~sigma:2.0
          in
          let cfg = Jigsaw.Config.make ~n:g ~w ~l () in
          let table = Wt.make ~precision:Wt.Fixed16 ~kernel ~width:w ~l () in
          let engine = Jigsaw.Engine2d.create cfg ~table in
          Jigsaw.Engine2d.stream engine ~gx ~gy values;
          let hw = Jigsaw.Engine2d.readout engine in
          let reference =
            Nufft.Gridding_serial.grid_2d
              ~table:(Wt.make ~kernel ~width:w ~l:1024 ())
              ~g ~gx ~gy values
          in
          Printf.printf " %9.2e" (Cvec.nrmsd ~reference hw))
        [ 4; 16; 32; 64 ];
      Printf.printf "\n")
    [ 2; 4; 6; 8 ];
  Printf.printf
    "  (error shrinks with L and is bounded by the Q1.15 weight \
     quantisation; every supported point grids correctly)\n"
