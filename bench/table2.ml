(* Table II: JIGSAW synthesis results (16 nm, 1.0 GHz), plus the derived
   observations the paper makes about them (SRAM dominance, 3D power). *)

let run () =
  Printf.printf "\n=== Table II: JIGSAW synthesis results (16 nm, 1.0 GHz) ===\n";
  Printf.printf "  %-28s %12s %12s\n" "variant" "power (mW)" "area (mm2)";
  List.iter
    (fun (name, m) ->
      Printf.printf "  %-28s %12.2f %12.2f\n" name
        m.Jigsaw.Synthesis.power_mw m.Jigsaw.Synthesis.area_mm2)
    Jigsaw.Synthesis.table;
  let full = Jigsaw.Synthesis.with_accum_sram Jigsaw.Synthesis.Two_d in
  let sram = Jigsaw.Synthesis.sram_contribution Jigsaw.Synthesis.Two_d in
  Printf.printf
    "  2D accumulation SRAM share: %.0f%% of area (paper ~95%%), %.0f%% of \
     power (paper >56%%)\n"
    (100.0 *. sram.Jigsaw.Synthesis.area_mm2 /. full.Jigsaw.Synthesis.area_mm2)
    (100.0 *. sram.Jigsaw.Synthesis.power_mw /. full.Jigsaw.Synthesis.power_mw);
  let p3 = (Jigsaw.Synthesis.with_accum_sram Jigsaw.Synthesis.Three_d_slice).Jigsaw.Synthesis.power_mw in
  Printf.printf
    "  3D Slice draws less power than 2D (%.2f vs %.2f mW): reduced \
     switching, each slice fully processes only ~M/Nz samples\n"
    p3 full.Jigsaw.Synthesis.power_mw;
  (* Cross-check the SRAM budget against the configuration model. *)
  let cfg = Jigsaw.Config.make ~n:1024 ~w:8 ~l:64 () in
  Printf.printf
    "  config model: accumulation SRAM %d bytes (8 MiB), weight SRAM %d \
     entries per dimension (fits 257)\n"
    (Jigsaw.Config.accum_sram_bytes cfg)
    (Jigsaw.Config.weight_sram_entries cfg)
