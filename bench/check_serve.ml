(* Validate a BENCH_serve.json produced by load_bench.exe. Entirely
   self-asserting — serving-tier throughput depends on the measuring
   machine, so there is no cross-machine baseline; what must hold
   everywhere are the structural invariants of a correct admission
   controller:

     - the rate sweep ran and every rung is internally consistent
       (completions happened, p50 <= p99, no untyped errors on rungs
       that kept up),
     - a saturation point was found (the ladder did not end before the
       server was ever pushed),
     - the overload leg was answered with typed sheds, not stalls or
       errors (load shedding works),
     - the Prometheus exposition scraped during overload parsed and
       validated (observability survives overload),
     - when the bench owned the server, the drain completed, every
       in-flight request was answered, and a late connection was turned
       away (graceful drain works).

   Reads the file line-by-line with Scanf like check_hotpath.exe — no
   JSON library.

   Usage: check_serve.exe BENCH_serve.json *)

let fold_lines path f init =
  let ic = open_in path in
  let acc = ref init in
  (try
     while true do
       acc := f !acc (input_line ic)
     done
   with End_of_file -> ());
  close_in ic;
  !acc

type rate_row = {
  offered : float;
  completed : float;
  ok : int;
  shed : int;
  errors : int;
  p50_ms : float;
  p99_ms : float;
}

let parse_rate_row line =
  match
    Scanf.sscanf line
      " { \"offered_rps\": %f, \"completed_rps\": %f, \"ok\": %d, \
       \"shed\": %d, \"errors\": %d, \"p50_ms\": %f, \"p99_ms\": %f"
      (fun offered completed ok shed errors p50_ms p99_ms ->
        { offered; completed; ok; shed; errors; p50_ms; p99_ms })
  with
  | row -> Some row
  | exception _ -> None

let parse_one path fmt k =
  fold_lines path
    (fun found line ->
      match Scanf.sscanf line fmt k with
      | v -> Some v
      | exception _ -> found)
    None

let () =
  match Array.to_list Sys.argv with
  | [ _; path ] ->
      if not (Sys.file_exists path) then begin
        Printf.eprintf "check_serve: %s absent (run load_bench first)\n"
          path;
        exit 2
      end;
      let schema = parse_one path " \"schema\": %S" (fun s -> s) in
      if schema <> Some "serve-1" then begin
        Printf.eprintf "check_serve: %s is not a serve-1 bench file\n" path;
        exit 2
      end;
      let mode =
        match parse_one path " \"mode\": %S" (fun s -> s) with
        | Some m -> m
        | None -> "unknown"
      in
      let rows =
        List.rev
          (fold_lines path
             (fun rows line ->
               match parse_rate_row line with
               | Some r -> r :: rows
               | None -> rows)
             [])
      in
      let saturation =
        parse_one path " \"saturation_rps\": %f" (fun s -> s)
      in
      let overload =
        parse_one path
          " \"overload\": { \"offered_rps\": %f, \"ok\": %d, \"shed\": %d, \
           \"errors\": %d, \"shed_pct\": %f"
          (fun rps ok shed errors pct -> (rps, ok, shed, errors, pct))
      in
      let drain =
        parse_one path
          " \"drain\": { \"drained\": %B, \"inflight\": %d, \"completed\": \
           %d, \"rejected\": %d, \"drain_ms\": %f, \"new_conn_rejected\": \
           %B"
          (fun drained inflight completed rejected ms rej ->
            (drained, inflight, completed, rejected, ms, rej))
      in
      let metrics_valid =
        parse_one path " \"metrics_valid\": %B" (fun b -> b)
      in
      let breaches = ref [] in
      let breach fmt =
        Printf.ksprintf (fun s -> breaches := s :: !breaches) fmt
      in
      Printf.printf "serving-tier invariants (%s, mode %s):\n" path mode;
      if rows = [] then breach "no rate rows recorded"
      else begin
        Printf.printf "  %d rate rung(s), %.0f..%.0f offered req/s\n"
          (List.length rows)
          (List.hd rows).offered
          (List.nth rows (List.length rows - 1)).offered;
        List.iter
          (fun r ->
            if r.ok + r.shed + r.errors = 0 then
              breach "rung %.0f req/s: no requests completed" r.offered;
            if r.ok > 0 && r.p50_ms > r.p99_ms +. 1e-9 then
              breach "rung %.0f req/s: p50 %.3f ms > p99 %.3f ms" r.offered
                r.p50_ms r.p99_ms;
            if r.ok > 0 && r.completed <= 0.0 then
              breach "rung %.0f req/s: ok > 0 but completed_rps = 0"
                r.offered)
          rows
      end;
      (match saturation with
      | None -> breach "saturation_rps missing"
      | Some s ->
          Printf.printf "  saturation %.0f req/s\n" s;
          if s <= 0.0 then
            breach
              "saturation_rps is %.0f — the server never kept up with the \
               lowest offered rate"
              s);
      (match overload with
      | None -> breach "overload leg missing"
      | Some (rps, ok, shed, errors, pct) ->
          Printf.printf
            "  overload %.0f attempts/s: %d ok, %d shed (%.1f%%), %d \
             errors\n"
            rps ok shed pct errors;
          if shed <= 0 then
            breach
              "overload leg recorded no sheds — admission control never \
               engaged";
          if ok <= 0 then
            breach "overload leg completed no requests — server stalled";
          if errors > 0 then
            breach
              "overload leg hit %d untyped errors — overflow must be shed, \
               not dropped"
              errors);
      (match metrics_valid with
      | None -> breach "metrics_valid missing"
      | Some true -> Printf.printf "  metrics exposition valid\n"
      | Some false ->
          breach "metrics exposition failed to parse/validate under load");
      (match drain with
      | None when mode = "inprocess" ->
          breach "drain leg missing from an inprocess run"
      | None -> Printf.printf "  drain leg skipped (external server)\n"
      | Some (drained, inflight, completed, rejected, ms, new_rej) ->
          Printf.printf
            "  drain %.2f ms: %d/%d in-flight completed, %d rejected \
             typed, new connection %s\n"
            ms completed inflight rejected
            (if new_rej then "rejected" else "accepted");
          if not drained then breach "drain timed out";
          if completed + rejected <> inflight then
            breach
              "drain answered %d of %d in-flight requests (typed or \
               completed)"
              (completed + rejected) inflight;
          if not new_rej then
            breach "a connection opened during drain was admitted");
      (match List.rev !breaches with
      | [] -> Printf.printf "  all serving invariants hold\n"
      | l ->
          Printf.eprintf "check_serve: %d invariant(s) breached:\n"
            (List.length l);
          List.iter (fun b -> Printf.eprintf "  - %s\n" b) l;
          exit 1)
  | _ ->
      Printf.eprintf "usage: check_serve.exe BENCH_serve.json\n";
      exit 2
