(* Compare a freshly produced BENCH_hotpath.json against the checked-in
   baseline and fail (exit 1) on a throughput regression beyond the
   tolerance. Reads only the per-engine lines the hotpath harness writes
   (one object per line), so no JSON library is needed.

   Usage: check_hotpath.exe CURRENT BASELINE [--tolerance 0.30] *)

let parse_engines path =
  let ic = open_in path in
  let rows = ref [] in
  (try
     while true do
       let line = input_line ic in
       match
         Scanf.sscanf line
           " { \"name\": %S, \"samples_per_sec\": %f, \
            \"minor_words_per_sample\": %f"
           (fun n s w -> (n, s, w))
       with
       | row -> rows := row :: !rows
       | exception Scanf.Scan_failure _ -> ()
       | exception End_of_file -> ()
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !rows

let () =
  let args = Array.to_list Sys.argv in
  let tolerance = ref 0.30 in
  let files = ref [] in
  let rec scan = function
    | [] -> ()
    | "--tolerance" :: v :: rest ->
        tolerance := float_of_string v;
        scan rest
    | f :: rest ->
        files := f :: !files;
        scan rest
  in
  scan (List.tl args);
  match List.rev !files with
  | [ current_path; baseline_path ] ->
      let current = parse_engines current_path in
      let baseline = parse_engines baseline_path in
      if baseline = [] then begin
        Printf.eprintf "check_hotpath: no engine rows in %s\n" baseline_path;
        exit 2
      end;
      if current = [] then begin
        Printf.eprintf "check_hotpath: no engine rows in %s\n" current_path;
        exit 2
      end;
      let failed = ref false in
      Printf.printf "hot-path throughput vs baseline (tolerance %.0f%%):\n"
        (100.0 *. !tolerance);
      List.iter
        (fun (name, base_sps, _) ->
          match
            List.find_opt (fun (n, _, _) -> n = name) current
          with
          | None ->
              Printf.printf "  %-16s MISSING from current run\n" name;
              failed := true
          | Some (_, cur_sps, _) ->
              let floor = (1.0 -. !tolerance) *. base_sps in
              let ok = cur_sps >= floor in
              Printf.printf "  %-16s %12.0f vs baseline %12.0f  %s\n" name
                cur_sps base_sps
                (if ok then "ok" else "REGRESSION");
              if not ok then failed := true)
        baseline;
      if !failed then begin
        Printf.eprintf
          "check_hotpath: throughput regression beyond %.0f%% tolerance\n"
          (100.0 *. !tolerance);
        exit 1
      end
  | _ ->
      Printf.eprintf
        "usage: check_hotpath.exe CURRENT BASELINE [--tolerance 0.30]\n";
      exit 2
