(* Compare a freshly produced BENCH_hotpath.json against the checked-in
   baseline and fail (exit 1) on a throughput regression beyond the
   tolerance, naming every metric that breached and by how much. When
   the baseline file does not exist (fresh checkout, first run on a new
   machine) the check is skipped with exit 0 so the bench harness stays
   usable without a baseline. Reads only the per-engine lines the
   hotpath harness writes (one object per line), so no JSON library is
   needed.

   Per-metric tolerance overrides: a baseline engine line may carry
   ["tolerance": T] (relative throughput floor for that engine only)
   and/or ["words_tolerance": W] (allocation-note threshold in minor
   words/sample), and the baseline service line may carry a trailing
   ["tolerance": T]. Overrides beat the global [--tolerance] flag, so a
   noisy metric (a pool-scheduled engine, a minor-words count) can be
   held to a loose bound without loosening the bound on every other
   metric.

   The current run's ["replay"] line is self-asserting: the harness
   records the parallel-over-serial replay speedup and the required
   floor (domains / 2); the check fails if the recorded speedup is below
   the recorded requirement. The baseline is not consulted for this —
   the requirement scales with the domain count of the measuring
   machine.

   The [--tuner FILE] flag adds the auto-tuner self-assertion from
   BENCH_tuner.json (emitted by [main.exe --json tuner]): per tuned key,
   the chosen engine's measured throughput must be within 5% of the best
   candidate measured in the same run (ratio >= required_ratio, 0.95 in
   auto mode). Rows with required_ratio 0.0 (JIGSAW_TUNE=off, or a
   user-forced engine) print SKIPPED and never breach. The flag works
   alone (tuner gate only) or alongside the two positional files.

   Usage: check_hotpath.exe [CURRENT BASELINE] [--tolerance 0.30]
                            [--tuner BENCH_tuner.json] *)

type engine_row = {
  name : string;
  sps : float;
  words : float;
  tol : float option;
  words_tol : float option;
}

(* Scanf.sscanf matches a prefix of the line, so the patterns with
   optional trailing fields must be tried longest first — the short
   pattern would happily accept a line carrying overrides and drop
   them. *)
let parse_engine_line line =
  let try_pat pat k = try Some (Scanf.sscanf line pat k) with _ -> None in
  let base = " { \"name\": %S, \"samples_per_sec\": %f, \"minor_words_per_sample\": %f" in
  match
    try_pat
      (Scanf.format_from_string
         (base ^ ", \"tolerance\": %f, \"words_tolerance\": %f")
         " %S %f %f %f %f")
      (fun name sps words t w ->
        { name; sps; words; tol = Some t; words_tol = Some w })
  with
  | Some r -> Some r
  | None -> (
      match
        try_pat
          (Scanf.format_from_string (base ^ ", \"tolerance\": %f")
             " %S %f %f %f")
          (fun name sps words t ->
            { name; sps; words; tol = Some t; words_tol = None })
      with
      | Some r -> Some r
      | None -> (
          match
            try_pat
              (Scanf.format_from_string (base ^ ", \"words_tolerance\": %f")
                 " %S %f %f %f")
              (fun name sps words w ->
                { name; sps; words; tol = None; words_tol = Some w })
          with
          | Some r -> Some r
          | None ->
              try_pat
                (Scanf.format_from_string base " %S %f %f")
                (fun name sps words ->
                  { name; sps; words; tol = None; words_tol = None })))

let fold_lines path f init =
  let ic = open_in path in
  let acc = ref init in
  (try
     while true do
       acc := f !acc (input_line ic)
     done
   with End_of_file -> ());
  close_in ic;
  !acc

let parse_engines path =
  List.rev
    (fold_lines path
       (fun rows line ->
         match parse_engine_line line with
         | Some r -> r :: rows
         | None -> rows)
       [])

(* The service line the hotpath harness writes (schema "service": {...}).
   Older baselines predate the pipeline layer; [None] from the baseline
   skips the service check so they keep working. *)
let parse_service path =
  fold_lines path
    (fun found line ->
      let try_pat pat k = try Some (Scanf.sscanf line pat k) with _ -> None in
      let base =
        " \"service\": { \"requests_per_sec\": %f, \"cold_plan_ms\": %f, \
         \"warm_request_ms\": %f, \"minor_words_per_request\": %f"
      in
      match
        try_pat
          (Scanf.format_from_string
             (base ^ ", \"m\": %d, \"tolerance\": %f")
             " %f %f %f %f %d %f")
          (fun r c w mw _m t -> (r, c, w, mw, Some t))
      with
      | Some row -> Some row
      | None -> (
          match
            try_pat
              (Scanf.format_from_string base " %f %f %f %f")
              (fun r c w mw -> (r, c, w, mw, None))
          with
          | Some row -> Some row
          | None -> found))
    None

let parse_replay path =
  fold_lines path
    (fun found line ->
      match
        Scanf.sscanf line
          " \"replay\": { \"serial_sps\": %f, \"parallel_sps\": %f, \
           \"domains\": %d, \"speedup\": %f, \"required_speedup\": %f"
          (fun s p d sp req -> (s, p, d, sp, req))
      with
      | row -> Some row
      | exception _ -> found)
    None

let parse_simd path =
  fold_lines path
    (fun found line ->
      match
        Scanf.sscanf line
          " \"simd\": { \"impl\": %S, \"scalar_sps\": %f, \"simd_sps\": %f, \
           \"speedup\": %f, \"required_speedup\": %f"
          (fun i s v sp req -> (i, s, v, sp, req))
      with
      | row -> Some row
      | exception _ -> found)
    None

let parse_slice_dispatch path =
  fold_lines path
    (fun found line ->
      match
        Scanf.sscanf line
          " \"slice_dispatch\": { \"serial_sps\": %f, \"dispatched_sps\": \
           %f, \"pool_size\": %d, \"profitable\": %B, \"ratio\": %f, \
           \"required_ratio\": %f"
          (fun s d p prof r req -> (s, d, p, prof, r, req))
      with
      | row -> Some row
      | exception _ -> found)
    None

let parse_telemetry_pct path =
  fold_lines path
    (fun found line ->
      match
        Scanf.sscanf line " \"telemetry_disabled_overhead_pct\": %f"
          (fun p -> p)
      with
      | p -> Some p
      | exception _ -> found)
    None

(* One tuned-key row of BENCH_tuner.json. *)
let parse_tuner_rows path =
  List.rev
    (fold_lines path
       (fun acc line ->
         match
           Scanf.sscanf line
             " { \"tuner\": { \"dims\": %d, \"n\": %d, \"m\": %d, \
              \"chosen\": %S, \"chosen_sps\": %f, \"best\": %S, \
              \"best_sps\": %f, \"ratio\": %f, \"required_ratio\": %f"
             (fun dims n m chosen csps best bsps ratio req ->
               (dims, n, m, chosen, csps, best, bsps, ratio, req))
         with
         | row -> row :: acc
         | exception _ -> acc)
       [])

let parse_tuner_mode path =
  fold_lines path
    (fun found line ->
      match Scanf.sscanf line " \"mode\": %S" (fun m -> m) with
      | m -> Some m
      | exception _ -> found)
    None

let () =
  let args = Array.to_list Sys.argv in
  let tolerance = ref 0.30 in
  let tuner = ref None in
  let files = ref [] in
  let rec scan = function
    | [] -> ()
    | "--tolerance" :: v :: rest ->
        tolerance := float_of_string v;
        scan rest
    | "--tuner" :: v :: rest ->
        tuner := Some v;
        scan rest
    | f :: rest ->
        files := f :: !files;
        scan rest
  in
  scan (List.tl args);
  let breaches = ref [] in
  let report () =
    match List.rev !breaches with
    | [] -> ()
    | l ->
        Printf.eprintf "check_hotpath: %d metric(s) breached:\n"
          (List.length l);
        List.iter (fun b -> Printf.eprintf "  - %s\n" b) l;
        exit 1
  in
  (* Self-asserting like replay/simd: the tuned choice is compared to the
     best candidate measured in the same run on the same machine, so no
     baseline is consulted. *)
  let check_tuner path =
    if not (Sys.file_exists path) then begin
      Printf.eprintf
        "check_hotpath: tuner report %s absent (run tuner --json first)\n"
        path;
      exit 2
    end;
    let rows = parse_tuner_rows path in
    if rows = [] then begin
      Printf.eprintf "check_hotpath: no tuner rows in %s\n" path;
      exit 2
    end;
    Printf.printf "auto-tuner gate (JIGSAW_TUNE=%s):\n"
      (match parse_tuner_mode path with Some m -> m | None -> "?");
    List.iter
      (fun (dims, n, m, chosen, csps, best, bsps, ratio, req) ->
        let label = Printf.sprintf "tuner %dD n=%d m=%d" dims n m in
        if req <= 0.0 then
          Printf.printf "  %-24s SKIPPED (not tuning in this mode)\n" label
        else begin
          let ok = ratio >= req in
          Printf.printf
            "  %-24s chose %s at %.2fx of best %s (%.0f vs %.0f sps, \
             required >= %.2fx)  %s\n"
            label chosen ratio best csps bsps req
            (if ok then "ok" else "BELOW REQUIREMENT");
          if not ok then
            breaches :=
              Printf.sprintf
                "%s: chose %s at %.2fx of best %s, required >= %.2fx" label
                chosen ratio best req
              :: !breaches
        end)
      rows
  in
  match (List.rev !files, !tuner) with
  | [], Some tuner_path ->
      check_tuner tuner_path;
      report ()
  | [ current_path; baseline_path ], _ ->
      if not (Sys.file_exists baseline_path) then begin
        Printf.printf
          "check_hotpath: baseline %s absent; skipping regression check\n"
          baseline_path;
        exit 0
      end;
      if not (Sys.file_exists current_path) then begin
        Printf.eprintf
          "check_hotpath: current run %s absent (run hotpath --json first)\n"
          current_path;
        exit 2
      end;
      let current = parse_engines current_path in
      let baseline = parse_engines baseline_path in
      if baseline = [] then begin
        Printf.eprintf "check_hotpath: no engine rows in %s\n" baseline_path;
        exit 2
      end;
      if current = [] then begin
        Printf.eprintf "check_hotpath: no engine rows in %s\n" current_path;
        exit 2
      end;
      Printf.printf
        "hot-path throughput vs baseline (default tolerance %.0f%%):\n"
        (100.0 *. !tolerance);
      List.iter
        (fun b ->
          match List.find_opt (fun (c : engine_row) -> c.name = b.name) current with
          | None ->
              Printf.printf "  %-24s MISSING from current run\n" b.name;
              breaches :=
                Printf.sprintf "%s: missing from current run" b.name
                :: !breaches
          | Some c ->
              let tol = match b.tol with Some t -> t | None -> !tolerance in
              let delta_pct = 100.0 *. ((c.sps /. b.sps) -. 1.0) in
              let floor = (1.0 -. tol) *. b.sps in
              let ok = c.sps >= floor in
              Printf.printf
                "  %-24s %12.0f vs baseline %12.0f  (%+.1f%%, floor \
                 -%.0f%%)  %s\n"
                b.name c.sps b.sps delta_pct (100.0 *. tol)
                (if ok then "ok" else "REGRESSION");
              if not ok then
                breaches :=
                  Printf.sprintf
                    "%s samples_per_sec: %.0f vs baseline %.0f (%+.1f%%, \
                     floor -%.0f%%)"
                    b.name c.sps b.sps delta_pct (100.0 *. tol)
                  :: !breaches;
              (* allocation is informational: the hot paths are meant to
                 be allocation-free, so flag any new per-sample churn *)
              let wtol =
                match b.words_tol with Some w -> w | None -> 0.5
              in
              if c.words > b.words +. wtol then
                Printf.printf
                  "  %-24s note: minor words/sample rose %.4f -> %.4f \
                   (threshold +%.4f)\n"
                  b.name b.words c.words wtol)
        baseline;
      (match (parse_service baseline_path, parse_service current_path) with
      | None, _ ->
          Printf.printf
            "  %-24s baseline has no service metrics; skipping\n" "service"
      | Some _, None ->
          Printf.printf "  %-24s MISSING from current run\n" "service";
          breaches :=
            "service: requests_per_sec missing from current run" :: !breaches
      | ( Some (base_rps, _, _, base_mw, base_tol),
          Some (cur_rps, cold, warm, cur_mw, _) ) ->
          let tol = match base_tol with Some t -> t | None -> !tolerance in
          let delta_pct = 100.0 *. ((cur_rps /. base_rps) -. 1.0) in
          let ok = cur_rps >= (1.0 -. tol) *. base_rps in
          Printf.printf
            "  %-24s %12.0f vs baseline %12.0f  (%+.1f%%, floor -%.0f%%)  \
             %s\n"
            "service req/s" cur_rps base_rps delta_pct (100.0 *. tol)
            (if ok then "ok" else "REGRESSION");
          Printf.printf
            "  %-24s cold plan %.3f ms, warm request %.3f ms\n" "" cold warm;
          if not ok then
            breaches :=
              Printf.sprintf
                "service requests_per_sec: %.0f vs baseline %.0f (%+.1f%%, \
                 floor -%.0f%%)"
                cur_rps base_rps delta_pct (100.0 *. tol)
              :: !breaches;
          if cur_mw > base_mw +. 64.0 then
            Printf.printf
              "  %-24s note: minor words/request rose %.1f -> %.1f\n" ""
              base_mw cur_mw);
      (match parse_replay current_path with
      | None ->
          Printf.printf
            "  %-24s current run has no replay metrics; skipping\n" "replay"
      | Some (_, _, domains, speedup, required) when required <= 0.0 ->
          (* The harness records required_speedup 0.0 when it measured on a
             single domain: the ratio is then serial-vs-serial noise and
             asserting on it would be vacuous either way. *)
          Printf.printf
            "  %-24s %.2fx on %d domain(s) — SKIPPED (single domain; run \
             with JIGSAW_BENCH_DOMAINS>=2 for a meaningful gate)\n"
            "parallel replay" speedup domains
      | Some (serial_sps, parallel_sps, domains, speedup, required) ->
          let ok = speedup >= required in
          Printf.printf
            "  %-24s %.2fx serial on %d domains (%.0f vs %.0f sps, \
             required >= %.2fx)  %s\n"
            "parallel replay" speedup domains parallel_sps serial_sps
            required
            (if ok then "ok" else "BELOW REQUIREMENT");
          if not ok then
            breaches :=
              Printf.sprintf
                "replay speedup: %.2fx on %d domains, required >= %.2fx"
                speedup domains required
              :: !breaches);
      (match parse_simd current_path with
      | None ->
          Printf.printf
            "  %-24s current run has no simd metrics; skipping\n" "simd"
      | Some (impl, _, _, speedup, required) when required <= 0.0 ->
          Printf.printf
            "  %-24s %.2fx scalar replay (impl %s) — SKIPPED (no vector \
             unit dispatched on this host)\n"
            "simd replay" speedup impl
      | Some (impl, scalar_sps, simd_sps, speedup, required) ->
          let ok = speedup >= required in
          Printf.printf
            "  %-24s %.2fx scalar replay (impl %s, %.0f vs %.0f sps, \
             required >= %.2fx)  %s\n"
            "simd replay" speedup impl simd_sps scalar_sps required
            (if ok then "ok" else "BELOW REQUIREMENT");
          if not ok then
            breaches :=
              Printf.sprintf
                "simd replay speedup: %.2fx (impl %s), required >= %.2fx"
                speedup impl required
              :: !breaches);
      (* Self-asserting like replay/simd: the dispatched slice-parallel
         engine demotes to the serial schedule when unprofitable, so the
         chosen path must never be slower than serial beyond noise. *)
      (match parse_slice_dispatch current_path with
      | None ->
          Printf.printf
            "  %-24s current run has no dispatch metrics; skipping\n"
            "slice dispatch"
      | Some (serial_sps, dispatched_sps, pool, profitable, ratio, required)
        ->
          let ok = ratio >= required in
          Printf.printf
            "  %-24s %.2fx serial (pool %d, %s, %.0f vs %.0f sps, required \
             >= %.2fx)  %s\n"
            "slice dispatch" ratio pool
            (if profitable then "column-scan" else "demoted")
            dispatched_sps serial_sps required
            (if ok then "ok" else "BELOW REQUIREMENT");
          if not ok then
            breaches :=
              Printf.sprintf
                "slice dispatch ratio: %.2fx serial on pool %d, required >= \
                 %.2fx (cliff: chosen path slower than serial)"
                ratio pool required
              :: !breaches);
      (match parse_telemetry_pct current_path with
      | None ->
          Printf.printf
            "  %-24s current run has no telemetry metric; skipping\n"
            "telemetry"
      | Some pct ->
          let ok = pct < 5.0 in
          Printf.printf
            "  %-24s disabled-dispatch overhead %+.2f%% (budget < 5%%)  %s\n"
            "telemetry" pct
            (if ok then "ok" else "OVER BUDGET");
          if not ok then
            breaches :=
              Printf.sprintf
                "telemetry disabled overhead: %.2f%%, budget < 5%%" pct
              :: !breaches);
      Option.iter check_tuner !tuner;
      report ()
  | _ ->
      Printf.eprintf
        "usage: check_hotpath.exe [CURRENT BASELINE] [--tolerance 0.30] \
         [--tuner BENCH_tuner.json]\n";
      exit 2
