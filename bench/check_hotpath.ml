(* Compare a freshly produced BENCH_hotpath.json against the checked-in
   baseline and fail (exit 1) on a throughput regression beyond the
   tolerance, naming every metric that breached and by how much. When
   the baseline file does not exist (fresh checkout, first run on a new
   machine) the check is skipped with exit 0 so the bench harness stays
   usable without a baseline. Reads only the per-engine lines the
   hotpath harness writes (one object per line), so no JSON library is
   needed.

   Usage: check_hotpath.exe CURRENT BASELINE [--tolerance 0.30] *)

let parse_engines path =
  let ic = open_in path in
  let rows = ref [] in
  (try
     while true do
       let line = input_line ic in
       match
         Scanf.sscanf line
           " { \"name\": %S, \"samples_per_sec\": %f, \
            \"minor_words_per_sample\": %f"
           (fun n s w -> (n, s, w))
       with
       | row -> rows := row :: !rows
       | exception Scanf.Scan_failure _ -> ()
       | exception End_of_file -> ()
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !rows

(* The service line the hotpath harness writes (schema "service": {...}).
   Older baselines predate the pipeline layer; [None] from the baseline
   skips the service check so they keep working. *)
let parse_service path =
  let ic = open_in path in
  let found = ref None in
  (try
     while true do
       let line = input_line ic in
       match
         Scanf.sscanf line
           " \"service\": { \"requests_per_sec\": %f, \"cold_plan_ms\": %f, \
            \"warm_request_ms\": %f, \"minor_words_per_request\": %f"
           (fun r c w mw -> (r, c, w, mw))
       with
       | row -> found := Some row
       | exception Scanf.Scan_failure _ -> ()
       | exception End_of_file -> ()
     done
   with End_of_file -> ());
  close_in ic;
  !found

let () =
  let args = Array.to_list Sys.argv in
  let tolerance = ref 0.30 in
  let files = ref [] in
  let rec scan = function
    | [] -> ()
    | "--tolerance" :: v :: rest ->
        tolerance := float_of_string v;
        scan rest
    | f :: rest ->
        files := f :: !files;
        scan rest
  in
  scan (List.tl args);
  match List.rev !files with
  | [ current_path; baseline_path ] ->
      if not (Sys.file_exists baseline_path) then begin
        Printf.printf
          "check_hotpath: baseline %s absent; skipping regression check\n"
          baseline_path;
        exit 0
      end;
      if not (Sys.file_exists current_path) then begin
        Printf.eprintf
          "check_hotpath: current run %s absent (run hotpath --json first)\n"
          current_path;
        exit 2
      end;
      let current = parse_engines current_path in
      let baseline = parse_engines baseline_path in
      if baseline = [] then begin
        Printf.eprintf "check_hotpath: no engine rows in %s\n" baseline_path;
        exit 2
      end;
      if current = [] then begin
        Printf.eprintf "check_hotpath: no engine rows in %s\n" current_path;
        exit 2
      end;
      let breaches = ref [] in
      Printf.printf "hot-path throughput vs baseline (tolerance %.0f%%):\n"
        (100.0 *. !tolerance);
      List.iter
        (fun (name, base_sps, base_words) ->
          match List.find_opt (fun (n, _, _) -> n = name) current with
          | None ->
              Printf.printf "  %-16s MISSING from current run\n" name;
              breaches :=
                Printf.sprintf "%s: missing from current run" name
                :: !breaches
          | Some (_, cur_sps, cur_words) ->
              let delta_pct = 100.0 *. ((cur_sps /. base_sps) -. 1.0) in
              let floor = (1.0 -. !tolerance) *. base_sps in
              let ok = cur_sps >= floor in
              Printf.printf
                "  %-16s %12.0f vs baseline %12.0f  (%+.1f%%)  %s\n" name
                cur_sps base_sps delta_pct
                (if ok then "ok" else "REGRESSION");
              if not ok then
                breaches :=
                  Printf.sprintf
                    "%s samples_per_sec: %.0f vs baseline %.0f (%+.1f%%, \
                     floor -%.0f%%)"
                    name cur_sps base_sps delta_pct (100.0 *. !tolerance)
                  :: !breaches;
              (* allocation is informational: the hot paths are meant to
                 be allocation-free, so flag any new per-sample churn *)
              if cur_words > base_words +. 0.5 then
                Printf.printf
                  "  %-16s note: minor words/sample rose %.4f -> %.4f\n"
                  name base_words cur_words)
        baseline;
      (match (parse_service baseline_path, parse_service current_path) with
      | None, _ ->
          Printf.printf
            "  %-16s baseline has no service metrics; skipping\n" "service"
      | Some _, None ->
          Printf.printf "  %-16s MISSING from current run\n" "service";
          breaches :=
            "service: requests_per_sec missing from current run" :: !breaches
      | Some (base_rps, _, _, base_mw), Some (cur_rps, cold, warm, cur_mw) ->
          let delta_pct = 100.0 *. ((cur_rps /. base_rps) -. 1.0) in
          let ok = cur_rps >= (1.0 -. !tolerance) *. base_rps in
          Printf.printf
            "  %-16s %12.0f vs baseline %12.0f  (%+.1f%%)  %s\n"
            "service req/s" cur_rps base_rps delta_pct
            (if ok then "ok" else "REGRESSION");
          Printf.printf
            "  %-16s cold plan %.3f ms, warm request %.3f ms\n" "" cold warm;
          if not ok then
            breaches :=
              Printf.sprintf
                "service requests_per_sec: %.0f vs baseline %.0f (%+.1f%%, \
                 floor -%.0f%%)"
                cur_rps base_rps delta_pct
                (100.0 *. !tolerance)
              :: !breaches;
          if cur_mw > base_mw +. 64.0 then
            Printf.printf
              "  %-16s note: minor words/request rose %.1f -> %.1f\n" ""
              base_mw cur_mw);
      (match List.rev !breaches with
      | [] -> ()
      | l ->
          Printf.eprintf
            "check_hotpath: %d metric(s) breached the %.0f%% tolerance:\n"
            (List.length l)
            (100.0 *. !tolerance);
          List.iter (fun b -> Printf.eprintf "  - %s\n" b) l;
          exit 1)
  | _ ->
      Printf.eprintf
        "usage: check_hotpath.exe CURRENT BASELINE [--tolerance 0.30]\n";
      exit 2
