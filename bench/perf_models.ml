(* Timing helpers and platform performance models shared by the
   figure/table reproductions.

   Measured quantities (this machine, OCaml):
     - CPU serial gridding (the MIRT-class baseline algorithm),
     - our FFT.
   Modelled quantities:
     - GPU kernels via the gpusim timing simulator,
     - JIGSAW via its exact M+depth cycle schedule,
     - a cuFFT-class GPU FFT via a flop/throughput model (simulating cuFFT
       at instruction level is out of scope; an effective-throughput model
       is enough because only the gridding:FFT ratio matters for Fig 7).

   Calibration note (documented in EXPERIMENTS.md): the paper's CPU
   baseline is MIRT under Matlab at roughly 1.5 us/sample; our compiled
   OCaml baseline is several times faster, so all "vs CPU" speedups here
   are correspondingly smaller, while accelerator-vs-accelerator ratios
   are directly comparable to the paper's. *)

module Cvec = Numerics.Cvec

let time_once f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  let t1 = Unix.gettimeofday () in
  (result, t1 -. t0)

(* Best of [repeats] runs — robust against scheduler noise for the
   hundreds-of-milliseconds measurements used in the tables. *)
let time_best ?(repeats = 3) f =
  let best = ref infinity in
  for _ = 1 to repeats do
    let _, dt = time_once f in
    if dt < !best then best := dt
  done;
  !best

let table_for ?(precision = Numerics.Weight_table.Double) ?(l = 512) () =
  Numerics.Weight_table.make ~precision
    ~kernel:
      (Numerics.Window.default_kaiser_bessel ~width:Bench_data.w ~sigma:2.0)
    ~width:Bench_data.w ~l ()

(* --- measured CPU baseline ------------------------------------------ *)

let cpu_serial_gridding_s (ds : Bench_data.t) =
  let table = table_for () in
  time_best (fun () ->
      Nufft.Gridding_serial.grid_2d ~table ~g:ds.Bench_data.g
        ~gx:(Nufft.Sample.gx ds.Bench_data.samples)
        ~gy:(Nufft.Sample.gy ds.Bench_data.samples)
        ds.Bench_data.samples.Nufft.Sample.values)

let cpu_fft_2d_s ~g =
  let v = Cvec.create (g * g) in
  Cvec.set v 1 (Numerics.Complexd.make 1.0 0.5);
  time_best (fun () -> Fft.Fftnd.transform_2d Fft.Dft.Forward ~nx:g ~ny:g v)

(* --- modelled GPU/ASIC side ----------------------------------------- *)

let gpu = Gpusim.Config.titan_xp

let gpu_slice_gridding (ds : Bench_data.t) =
  let p = Gpusim.Kernels.problem_of_samples ~w:Bench_data.w ds.Bench_data.samples in
  Gpusim.Sim.run ~gpu (Gpusim.Kernels.slice_and_dice p)

let gpu_binned_gridding (ds : Bench_data.t) =
  let p = Gpusim.Kernels.problem_of_samples ~w:Bench_data.w ds.Bench_data.samples in
  let main = Gpusim.Sim.run ~gpu (Gpusim.Kernels.binned p) in
  let presort = Gpusim.Sim.run ~gpu (Gpusim.Kernels.binned_presort p) in
  (main, presort)

let jigsaw_config (ds : Bench_data.t) =
  Jigsaw.Config.make ~n:ds.Bench_data.g ~w:Bench_data.w ~l:32 ()

let jigsaw_gridding_s (ds : Bench_data.t) =
  let cfg = jigsaw_config ds in
  float_of_int (ds.Bench_data.m + cfg.Jigsaw.Config.pipeline_depth_2d)
  /. (cfg.Jigsaw.Config.clock_ghz *. 1e9)

(* Effective cuFFT-class throughput, including launch overheads; chosen so
   that the oversampled-grid FFT lands in the same range as the simulated
   Slice-and-Dice gridding time, reproducing the paper's "equal gridding
   and FFT computation time" observation for the GPU implementation. *)
let gpu_fft_effective_gflops = 60.0

let gpu_fft_2d_s ~g =
  Fft.Fftnd.flop_estimate_2d ~nx:g ~ny:g /. (gpu_fft_effective_gflops *. 1e9)

(* --- shared result row ------------------------------------------------ *)

type row = {
  ds : Bench_data.t;
  cpu_s : float;
  binned_s : float;  (** Impatient-style: presort + main pass *)
  slice_s : float;
  jigsaw_s : float;
  slice_result : Gpusim.Sim.result;
  binned_result : Gpusim.Sim.result;
  presort_result : Gpusim.Sim.result;
}

let gridding_rows_cache : (string, row) Hashtbl.t = Hashtbl.create 8

let gridding_row (ds : Bench_data.t) =
  match Hashtbl.find_opt gridding_rows_cache ds.Bench_data.name with
  | Some r -> r
  | None ->
      let cpu_s = cpu_serial_gridding_s ds in
      let slice_result = gpu_slice_gridding ds in
      let binned_result, presort_result = gpu_binned_gridding ds in
      let r =
        { ds;
          cpu_s;
          binned_s = binned_result.Gpusim.Sim.time_s +. presort_result.Gpusim.Sim.time_s;
          slice_s = slice_result.Gpusim.Sim.time_s;
          jigsaw_s = jigsaw_gridding_s ds;
          slice_result;
          binned_result;
          presort_result }
      in
      Hashtbl.add gridding_rows_cache ds.Bench_data.name r;
      r

let geomean xs =
  let n = List.length xs in
  if n = 0 then 0.0
  else exp (List.fold_left (fun acc x -> acc +. log x) 0.0 xs /. float_of_int n)
