(* Figure 6: gridding speedups normalised to the CPU (MIRT-class serial)
   baseline, for the five evaluation images.

   Paper values (Titan Xp / 16 nm ASIC, MIRT-Matlab baseline):
     Impatient       4, 18, 39, 9, 9          (avg ~16x)
     Slice-and-Dice  374, 201, 248, 249, 202  (avg >250x)
     JIGSAW          2386, 750, 943, 1728, 1759 (avg ~1500x)
   Our baseline is compiled OCaml (several times faster than Matlab-MIRT),
   so absolute "vs CPU" factors are smaller; the ordering and the
   accelerator-to-accelerator ratios are the reproduction targets. *)

let run () =
  Printf.printf "\n=== Figure 6: gridding speedups (normalized to CPU serial baseline) ===\n";
  Printf.printf "%-28s %12s %12s %12s %12s | %9s %9s %9s\n" "dataset" "cpu(ms)"
    "binned(ms)" "slice(ms)" "jigsaw(ms)" "binned_x" "slice_x" "jigsaw_x";
  let rows = List.map Perf_models.gridding_row (Bench_data.images ()) in
  let speedups =
    List.map
      (fun r ->
        let sb = r.Perf_models.cpu_s /. r.Perf_models.binned_s in
        let ss = r.Perf_models.cpu_s /. r.Perf_models.slice_s in
        let sj = r.Perf_models.cpu_s /. r.Perf_models.jigsaw_s in
        Printf.printf "%-28s %12.3f %12.3f %12.3f %12.4f | %9.1f %9.1f %9.1f\n"
          (Bench_data.label r.Perf_models.ds)
          (1e3 *. r.Perf_models.cpu_s)
          (1e3 *. r.Perf_models.binned_s)
          (1e3 *. r.Perf_models.slice_s)
          (1e3 *. r.Perf_models.jigsaw_s)
          sb ss sj;
        (sb, ss, sj))
      rows
  in
  let g f = Perf_models.geomean (List.map f speedups) in
  let avg_b = g (fun (b, _, _) -> b)
  and avg_s = g (fun (_, s, _) -> s)
  and avg_j = g (fun (_, _, j) -> j) in
  Printf.printf
    "geomean speedups: binned %.1fx  slice-and-dice %.1fx  jigsaw %.1fx\n"
    avg_b avg_s avg_j;
  Printf.printf
    "accelerator ratios: slice/binned %.1fx (paper ~16x)  jigsaw/slice %.1fx \
     (paper ~6x)  jigsaw/binned %.1fx (paper ~36-95x)\n"
    (avg_s /. avg_b) (avg_j /. avg_s) (avg_j /. avg_b)
