(* Auto-tuner measurement: run the tuner's trial battery on a 2D and a 3D
   problem, report every candidate's measured throughput and the tuner's
   choice, and (with --json) emit BENCH_tuner.json for the
   check_hotpath.exe --tuner gate.

   The gate asserts self-consistency, not a cross-machine baseline: in
   auto mode the tuned choice must be within 5% of the best candidate
   measured in the same run (required_ratio 0.95). With JIGSAW_TUNE=off
   the tuner never measures, so rows carry required_ratio 0.0 and the
   gate prints SKIPPED; a forced engine is the user's decision and is
   likewise not gated. *)

module Sample = Nufft.Sample
module Tuner = Nufft.Tuner

let json = ref false
let json_path = "BENCH_tuner.json"

type row = {
  dims : int;
  n : int;
  m : int;
  chosen : string;
  chosen_sps : float;
  best : string;
  best_sps : float;
  required : float;
}

let measured_row ?pool ~n ~coords () =
  let dims = Sample.dims coords and m = Sample.length coords in
  let c = Tuner.choose ?pool ~n ~coords () in
  (* The resolved name honours JIGSAW_TUNE (a forced engine differs from
     the trial winner); ratio is computed against the forced engine's own
     trial when it was measured, so the gate stays meaningful in auto
     mode and is skipped otherwise. *)
  let chosen = Tuner.resolve ?pool ~default:"serial" ~n ~coords () in
  let chosen_sps =
    match
      List.find_opt (fun (t : Tuner.trial) -> t.Tuner.engine = chosen) c.Tuner.trials
    with
    | Some t -> t.Tuner.samples_per_sec
    | None -> 0.0
  in
  let required = match Tuner.mode () with Tuner.Auto -> 0.95 | _ -> 0.0 in
  { dims;
    n;
    m;
    chosen;
    chosen_sps;
    best = c.Tuner.backend;
    best_sps = c.Tuner.sps;
    required }

let off_row ~n ~coords =
  { dims = Sample.dims coords;
    n;
    m = Sample.length coords;
    chosen = "serial";
    chosen_sps = 0.0;
    best = "serial";
    best_sps = 0.0;
    required = 0.0 }

let write_json ~mode rows =
  let oc = open_out json_path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"schema\": \"tuner-1\",\n";
  p "  \"mode\": %S,\n" mode;
  p "  \"keys\": [\n";
  List.iteri
    (fun i r ->
      p
        "    { \"tuner\": { \"dims\": %d, \"n\": %d, \"m\": %d, \"chosen\": \
         %S, \"chosen_sps\": %.1f, \"best\": %S, \"best_sps\": %.1f, \
         \"ratio\": %.3f, \"required_ratio\": %.3f } }%s\n"
        r.dims r.n r.m r.chosen r.chosen_sps r.best r.best_sps
        (if r.best_sps > 0.0 then r.chosen_sps /. r.best_sps else 1.0)
        r.required
        (if i < List.length rows - 1 then "," else ""))
    rows;
  p "  ]\n";
  p "}\n";
  close_out oc;
  Printf.printf "  wrote %s\n" json_path

let run () =
  let quick = !Bench_data.quick in
  Printf.printf "\n=== auto-tuner trials (JIGSAW_TUNE=%s) ===\n%!"
    (Tuner.mode_name ());
  let n2 = if quick then 32 else 64 in
  let m2 = if quick then 4000 else 40000 in
  let n3 = if quick then 12 else 24 in
  let m3 = if quick then 3000 else 20000 in
  let coords2 = Sample.random_2d ~seed:42 ~g:(2 * n2) m2 in
  let coords3 = Sample.random_3d ~seed:43 ~g:(2 * n3) m3 in
  let off = Tuner.mode () = Tuner.Off in
  let rows =
    if off then [ off_row ~n:n2 ~coords:coords2; off_row ~n:n3 ~coords:coords3 ]
    else begin
      Tuner.reset ();
      [ measured_row ~n:n2 ~coords:coords2 ();
        measured_row ~n:n3 ~coords:coords3 () ]
    end
  in
  List.iter
    (fun r ->
      if r.required <= 0.0 then
        Printf.printf "  %dD n=%d m=%d: not tuning (mode %s)\n" r.dims r.n r.m
          (Tuner.mode_name ())
      else
        Printf.printf "  %dD n=%d m=%d: chose %s (%.2e sps; best %s %.2e)\n"
          r.dims r.n r.m r.chosen r.chosen_sps r.best r.best_sps)
    rows;
  if (not off) && Tuner.mode () = Tuner.Auto then begin
    (* Second sight of each key must hit the cache, not re-trial.
       Counters only tick while telemetry is enabled, so flip it on for
       the check and restore. *)
    let was = Telemetry.enabled () in
    Telemetry.set_enabled true;
    let hits = Telemetry.Counter.make "tuner.hit" in
    let hits0 = Telemetry.Counter.value hits in
    ignore (Tuner.choose ~n:n2 ~coords:coords2 ());
    let hits1 = Telemetry.Counter.value hits in
    Telemetry.set_enabled was;
    Printf.printf "  cache: repeat lookup %s\n"
      (if hits1 > hits0 then "hit (no re-trial)" else "MISSED - unexpected")
  end;
  if !json then write_json ~mode:(Tuner.mode_name ()) rows
