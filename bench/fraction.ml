(* E7 (paper Sec. I/II): the gridding share of NuFFT computation time.

   The paper measures that with a modern optimised FFT, gridding accounts
   for up to 99.6% of CPU NuFFT time. We report (a) the measured fraction
   with our own (unoptimised, pure-OCaml) FFT and (b) the fraction implied
   by an MKL/FFTW-class FFT model — the honest and the like-for-like
   number. *)

let mkl_class_gflops = 20.0

let run () =
  Printf.printf "\n=== E7: gridding share of CPU NuFFT time ===\n";
  Printf.printf "  %-28s %12s %12s %12s | %10s %12s\n" "dataset" "grid(ms)"
    "ourFFT(ms)" "fftw-ish(ms)" "frac(ours)" "frac(fftw-ish)";
  List.iter
    (fun ds ->
      let r = Perf_models.gridding_row ds in
      let g = ds.Bench_data.g in
      let fft_ours = Perf_models.cpu_fft_2d_s ~g in
      let fft_model =
        Fft.Fftnd.flop_estimate_2d ~nx:g ~ny:g /. (mkl_class_gflops *. 1e9)
      in
      let frac fft = r.Perf_models.cpu_s /. (r.Perf_models.cpu_s +. fft) in
      Printf.printf "  %-28s %12.2f %12.2f %12.3f | %9.1f%% %11.1f%%\n"
        (Bench_data.label ds)
        (1e3 *. r.Perf_models.cpu_s)
        (1e3 *. fft_ours) (1e3 *. fft_model)
        (100.0 *. frac fft_ours)
        (100.0 *. frac fft_model))
    (Bench_data.images ());
  Printf.printf
    "  (paper: gridding is >=99.6%% of MIRT NuFFT time against a \
     state-of-the-art FFT; the right-hand column is the comparable \
     number)\n"
