(* Figure 3 / Sec. III work accounting: binning vs Slice-and-Dice.

   (1) The paper's worked example: a 16x16 oversampled grid split into
   four 8x8 tiles with M = 6 samples — binning processes 16 sample visits
   (duplicates included) where Slice-and-Dice processes 6.
   (2) The same counters on the real evaluation datasets, plus the
   boundary-check totals of each parallel model:
       naive output-parallel  M * G^2
       binned                 bin^2 * sum of bin sizes
       slice-and-dice         M * T^2. *)

module Stats = Nufft.Gridding_stats
module Cvec = Numerics.Cvec

let worked_example () =
  let g = 16 and t = 8 and w = 6 in
  let table =
    Numerics.Weight_table.make
      ~kernel:(Numerics.Window.default_kaiser_bessel ~width:w ~sigma:2.0)
      ~width:w ~l:32 ()
  in
  (* Six samples a..f placed like Fig 2/3: some interior, some near tile
     boundaries and grid edges so their windows wrap. *)
  let gx = [| 3.2; 11.7; 14.9; 6.1; 4.8; 8.3 |] in
  let gy = [| 1.4; 6.6; 12.2; 9.8; 6.5; 15.1 |] in
  let values = Cvec.create 6 in
  for j = 0 to 5 do
    Cvec.set_parts values j 1.0 0.0
  done;
  let binned = Stats.create () in
  ignore
    (Nufft.Gridding_binned.grid_2d ~stats:binned ~table ~g ~bin:t ~gx ~gy values);
  let slice = Stats.create () in
  ignore
    (Nufft.Gridding_slice.grid_2d ~stats:slice ~table ~g ~t ~gx ~gy values);
  Printf.printf
    "  worked example (16x16 grid, four 8x8 tiles, M=6, W=6):\n";
  Printf.printf
    "    binning processes %d sample visits (paper's example: 16), \
     slice-and-dice %d (= M)\n"
    binned.Stats.samples_processed slice.Stats.samples_processed;
  Printf.printf "    boundary checks: binned %d, slice-and-dice %d (= M*T^2 = %d)\n"
    binned.Stats.boundary_checks slice.Stats.boundary_checks (6 * t * t)

let dataset_accounting () =
  Printf.printf
    "  %-28s %14s %10s %16s %14s %14s\n" "dataset" "binned visits" "dup"
    "naive checks" "binned checks" "slice checks";
  List.iter
    (fun ds ->
      let table = Perf_models.table_for ~l:32 () in
      let g = ds.Bench_data.g in
      let s = ds.Bench_data.samples in
      let binned = Stats.create () in
      ignore
        (Nufft.Gridding_binned.grid_2d ~stats:binned ~table ~g ~bin:8
           ~gx:(Nufft.Sample.gx s) ~gy:(Nufft.Sample.gy s) s.Nufft.Sample.values);
      let slice = Stats.create () in
      ignore
        (Nufft.Gridding_slice.grid_2d_fast ~stats:slice ~table ~g ~t:8
           ~gx:(Nufft.Sample.gx s) ~gy:(Nufft.Sample.gy s) s.Nufft.Sample.values);
      let m = ds.Bench_data.m in
      Printf.printf "  %-28s %14d %9.2fx %16.3e %14.3e %14.3e\n"
        (Bench_data.label ds) binned.Stats.samples_processed
        (float_of_int binned.Stats.samples_processed /. float_of_int m)
        (float_of_int m *. float_of_int (g * g))
        (float_of_int binned.Stats.boundary_checks)
        (float_of_int slice.Stats.boundary_checks))
    (Bench_data.images ())

let run () =
  Printf.printf "\n=== Figure 3 / E8: work accounting, binning vs slice-and-dice ===\n";
  worked_example ();
  dataset_accounting ();
  Printf.printf
    "  (slice-and-dice: no presort, no duplicate visits, checks independent \
     of grid size — an N^2/T^2 reduction vs naive output parallelism)\n"
