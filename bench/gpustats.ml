(* Sec. VI-A microarchitectural statistics: why Slice-and-Dice maps better to
   the GPU than Impatient's binning.

   Paper: Slice-and-Dice achieves ~98% L2 hit rate and ~80% occupancy vs
   Impatient's ~80% and ~47%; plus LUT weights instead of on-line
   computation and parallelism across both input and output. *)

let run () =
  Printf.printf "\n=== E9: GPU microarchitectural statistics (simulated Titan Xp) ===\n";
  Printf.printf "  %-28s | %18s | %18s\n" "" "slice-and-dice" "impatient-binned";
  Printf.printf "  %-28s | %8s %9s | %8s %9s\n" "dataset" "L2 hit" "occup"
    "L2 hit" "occup";
  let acc = ref [] in
  List.iter
    (fun ds ->
      let r = Perf_models.gridding_row ds in
      let s = r.Perf_models.slice_result and b = r.Perf_models.binned_result in
      Printf.printf "  %-28s | %7.1f%% %8.0f%% | %7.1f%% %8.0f%%\n"
        (Bench_data.label ds)
        (100.0 *. s.Gpusim.Sim.l2_hit_rate)
        (100.0 *. s.Gpusim.Sim.occupancy)
        (100.0 *. b.Gpusim.Sim.l2_hit_rate)
        (100.0 *. b.Gpusim.Sim.occupancy);
      acc := (s, b) :: !acc)
    (Bench_data.images ());
  (match !acc with
  | [] -> ()
  | l ->
      let avg f = Perf_models.geomean (List.map f l) in
      Printf.printf
        "  means: slice L2 %.1f%% / occ %.0f%%  binned L2 %.1f%% / occ %.0f%%\n"
        (100.0 *. avg (fun (s, _) -> s.Gpusim.Sim.l2_hit_rate))
        (100.0 *. avg (fun (s, _) -> s.Gpusim.Sim.occupancy))
        (100.0 *. avg (fun (_, b) -> b.Gpusim.Sim.l2_hit_rate))
        (100.0 *. avg (fun (_, b) -> b.Gpusim.Sim.occupancy)));
  Printf.printf
    "  (paper: slice ~98%% L2 / ~80%% occupancy; Impatient ~80%% L2 / ~47%% \
     occupancy)\n";
  Printf.printf
    "  SIMD lane utilisation (divergence): slice %.0f%%, binned %.0f%% — \
     binned masks most lanes during interpolation (T/W idle threads, \
     Sec. II-C)\n"
    (100.0
    *. Perf_models.geomean
         (List.map
            (fun ds ->
              (Perf_models.gridding_row ds).Perf_models.slice_result
                .Gpusim.Sim.simd_utilization)
            (Bench_data.images ())))
    (100.0
    *. Perf_models.geomean
         (List.map
            (fun ds ->
              (Perf_models.gridding_row ds).Perf_models.binned_result
                .Gpusim.Sim.simd_utilization)
            (Bench_data.images ())))
