(* Hot-path perf-regression harness.

   Measures, on a fixed seeded workload: gridding throughput (samples/sec)
   and allocation (minor words/sample) for each CPU engine plus the
   compiled-plan replay path, and the wall time of a compiled-plan CG
   reconstruction. With [json := true] the numbers are written to
   BENCH_hotpath.json, one engine per line, so check_hotpath.exe (and the
   CI perf smoke job) can diff them against the checked-in baseline with a
   tolerance. *)

module Cvec = Numerics.Cvec
module Sample = Nufft.Sample
module Op = Nufft.Operator

let json = ref false
let json_path = "BENCH_hotpath.json"

type row = {
  name : string;
  samples_per_sec : float;
  minor_words_per_sample : float;
}

let now () = Unix.gettimeofday ()

(* Run [f] repeatedly for >= 0.3 s (at least twice, after one warmup call)
   and return (samples/sec, minor words/sample). *)
let measure ~m f =
  ignore (f ());
  let t0 = now () in
  let w0 = Gc.minor_words () in
  let reps = ref 0 in
  let elapsed = ref 0.0 in
  while !reps < 2 || !elapsed < 0.3 do
    ignore (f ());
    incr reps;
    elapsed := now () -. t0
  done;
  let words = Gc.minor_words () -. w0 in
  let total = float_of_int (!reps * m) in
  (total /. !elapsed, words /. total)

(* Steady-state serving through the pipeline layer: one cold request pays
   the plan build, then identical-trajectory requests replay the cached
   plan through pooled arenas. Reports cold/warm latency, warm
   requests/sec, and warm minor words per request (the arena discipline
   keeps the latter O(1), a few hundred words). *)
let service_case ~quick =
  let n = if quick then 32 else 64 in
  let spokes = if quick then 16 else 48 in
  let traj = Trajectory.Radial.make ~spokes ~readout:(2 * n) () in
  let coords = Imaging.Recon.coords_of_traj ~g:(2 * n) traj in
  let m = Sample.length coords in
  let values =
    Cvec.init m (fun j ->
        Numerics.Complexd.make (sin (0.1 *. float_of_int j)) 0.25)
  in
  let module Svc = Pipeline.Recon_service in
  let svc = Svc.create () in
  let req =
    { Svc.backend = "serial";
      transform = Nufft.Transform.Type1;
      n;
      coords;
      values;
      density = None;
      method_ = Svc.Adjoint;
      tol = None;
      family = None }
  in
  let ok = function
    | Ok _ -> ()
    | Error e -> failwith ("hotpath service bench: " ^ Svc.error_message e)
  in
  let t0 = now () in
  ok (Svc.submit svc req);
  let cold_ms = 1000.0 *. (now () -. t0) in
  ok (Svc.submit svc req);
  let t0 = now () in
  let w0 = Gc.minor_words () in
  let reps = ref 0 and elapsed = ref 0.0 in
  while !reps < 2 || !elapsed < 0.3 do
    ok (Svc.submit svc req);
    incr reps;
    elapsed := now () -. t0
  done;
  let words = Gc.minor_words () -. w0 in
  let rps = float_of_int !reps /. !elapsed in
  (rps, cold_ms, 1000.0 /. rps, words /. float_of_int !reps, m)

let cg_case ~quick =
  let n = if quick then 32 else 64 in
  let g = 2 * n in
  let m = if quick then 1500 else 6000 in
  let tile = Nufft.Coord.fallback_tile ~g ~w:6 in
  let plan =
    Nufft.Plan.make ~engine:(Nufft.Gridding.Slice_and_dice tile) ~n ()
  in
  let coords = Sample.random_2d ~seed:7 ~g m in
  let op = Op.of_plan plan ~coords in
  let image =
    Cvec.init (n * n) (fun idx ->
        let ix = idx mod n and iy = idx / n in
        let d2 c = (float_of_int c -. (float_of_int n /. 2.0)) ** 2.0 in
        Numerics.Complexd.of_float (exp (-.(d2 ix +. d2 iy) /. 16.0)))
  in
  let data = Op.apply_forward op image in
  let iterations = 8 in
  let t0 = now () in
  let b = Imaging.Cg.normal_equations_rhs_op op data in
  let result =
    Imaging.Cg.solve ~max_iterations:iterations ~tolerance:0.0
      ~apply:(Imaging.Cg.normal_map op) b
  in
  let wall = now () -. t0 in
  ignore result.Imaging.Cg.solution;
  (n, m, result.Imaging.Cg.iterations, wall)

let write_json ~quick ~g ~m ~tile ~disabled_pct ~replay:(rsps, psps, domains)
    ~simd:(simd_name, scalar_sps, simd_sps, simd_required)
    ~dispatch:(d_serial, d_sps, d_pool, d_profitable) rows
    (svc_rps, svc_cold_ms, svc_warm_ms, svc_words, svc_m)
    (cg_n, cg_m, cg_iters, cg_wall) =
  let oc = open_out json_path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"schema\": \"hotpath-1\",\n";
  p "  \"quick\": %b,\n" quick;
  p "  \"g\": %d,\n" g;
  p "  \"m\": %d,\n" m;
  p "  \"w\": %d,\n" Bench_data.w;
  p "  \"tile\": %d,\n" tile;
  p "  \"engines\": [\n";
  List.iteri
    (fun i r ->
      p
        "    { \"name\": %S, \"samples_per_sec\": %.1f, \
         \"minor_words_per_sample\": %.4f }%s\n"
        r.name r.samples_per_sec r.minor_words_per_sample
        (if i < List.length rows - 1 then "," else ""))
    rows;
  p "  ],\n";
  p "  \"telemetry_disabled_overhead_pct\": %.2f,\n" disabled_pct;
  (* required_speedup 0.0 marks the gate as skipped: with one domain the
     parallel path degenerates to serial dispatch and any ratio near 1.0
     would pass (or fail) on noise alone. *)
  p
    "  \"replay\": { \"serial_sps\": %.1f, \"parallel_sps\": %.1f, \
     \"domains\": %d, \"speedup\": %.3f, \"required_speedup\": %.3f },\n"
    rsps psps domains (psps /. rsps)
    (if domains >= 2 then float_of_int domains /. 2.0 else 0.0);
  p
    "  \"simd\": { \"impl\": %S, \"scalar_sps\": %.1f, \"simd_sps\": %.1f, \
     \"speedup\": %.3f, \"required_speedup\": %.3f },\n"
    simd_name scalar_sps simd_sps
    (simd_sps /. scalar_sps)
    simd_required;
  (* Self-asserting dispatch gate: the Slice_parallel engine demotes to
     the bit-identical serial schedule when the profitability model says
     the pool cannot win, so the dispatched path must never be slower
     than serial beyond measurement noise (the 0.90 floor). *)
  p
    "  \"slice_dispatch\": { \"serial_sps\": %.1f, \"dispatched_sps\": \
     %.1f, \"pool_size\": %d, \"profitable\": %b, \"ratio\": %.3f, \
     \"required_ratio\": 0.900 },\n"
    d_serial d_sps d_pool d_profitable
    (d_sps /. d_serial);
  p
    "  \"service\": { \"requests_per_sec\": %.1f, \"cold_plan_ms\": %.3f, \
     \"warm_request_ms\": %.3f, \"minor_words_per_request\": %.1f, \"m\": \
     %d },\n"
    svc_rps svc_cold_ms svc_warm_ms svc_words svc_m;
  p "  \"cg\": { \"n\": %d, \"m\": %d, \"iterations\": %d, \"wall_s\": %.6f }\n"
    cg_n cg_m cg_iters cg_wall;
  p "}\n";
  close_out oc;
  Printf.printf "  wrote %s\n" json_path

let run () =
  let quick = !Bench_data.quick in
  let g = if quick then 128 else 256 in
  let m = if quick then 4000 else 40000 in
  let samples = Sample.random_2d ~seed:42 ~g m in
  let gx = Sample.gx samples and gy = Sample.gy samples in
  let values = samples.Sample.values in
  let table = Perf_models.table_for () in
  let tile = Nufft.Coord.fallback_tile ~g ~w:Bench_data.w in
  Printf.printf
    "\n=== Hot-path regression harness (g=%d, m=%d, w=%d, tile=%d) ===\n" g m
    Bench_data.w tile;
  (* output-parallel is O(M G^2): ~100x the work of the others at this
     size, so it is deliberately not part of the hot-path suite. *)
  Printf.printf "  (output-parallel engine excluded: O(M*G^2) scan)\n";
  let engine name e =
    let f () = Nufft.Gridding.grid_2d e ~table ~g ~gx ~gy values in
    let sps, words = measure ~m f in
    { name; samples_per_sec = sps; minor_words_per_sample = words }
  in
  (* Parallel replay is measured on its own small pool (capped at 4
     domains so the headline is comparable across machines; the
     JIGSAW_BENCH_DOMAINS env var overrides the cap so CI can pin a
     meaningful shard count); the warmup call inside [measure] builds and
     caches the region partition, so the timed reps see only the
     per-shard dispatch — the steady state of a CG loop or a warm
     service. *)
  let replay_domains =
    let auto = min 4 (Domain.recommended_domain_count ()) in
    match Sys.getenv_opt "JIGSAW_BENCH_DOMAINS" with
    | None -> auto
    | Some s -> ( try max 1 (int_of_string (String.trim s)) with _ -> auto)
  in
  let replay, replay_parallel, replay_simd, replay_info, simd_info =
    let plan =
      Nufft.Plan.make ~engine:(Nufft.Gridding.Slice_and_dice tile)
        ~n:(g / 2) ()
    in
    let sp = Nufft.Plan.compiled plan samples in
    (* Replay through [spread_into] on a reused workspace grid: the
       steady state of a CG loop or warm service, and the path whose
       per-call cost is pure kernel (zero-fill + accumulate) rather
       than bigarray allocation. *)
    let work = Cvec.create (Nufft.Sample_plan.grid_length sp) in
    let f () = Nufft.Sample_plan.spread_into sp values work in
    (* SIMD replay: same compiled stream through the dispatched C spread
       kernel. The 1.5x floor applies only when a vector implementation
       is live — scalar C vs the OCaml loop is a wash by design, and
       required_speedup 0.0 records the gate as skipped. The scalar and
       SIMD sides are measured interleaved, best of three, so the gate
       compares each loop's best showing rather than trusting two
       back-to-back windows on a possibly frequency-drifting host. *)
    let impl = Simd.active () in
    let fs () = Nufft.Sample_plan.spread_into ~simd:true sp values work in
    let sps = ref 0.0 and words = ref 0.0 in
    let ssps = ref 0.0 and swords = ref 0.0 in
    for _ = 1 to 3 do
      let s, w = measure ~m f in
      if s > !sps then begin
        sps := s;
        words := w
      end;
      let s, w = measure ~m fs in
      if s > !ssps then begin
        ssps := s;
        swords := w
      end
    done;
    let sps = !sps and words = !words in
    let ssps = !ssps and swords = !swords in
    let pool = Runtime.Pool.create ~domains:replay_domains () in
    let fp () = Nufft.Sample_plan.spread_parallel ~pool sp values in
    let psps, pwords = measure ~m fp in
    Runtime.Pool.shutdown pool;
    let required =
      match impl with Simd.Avx2 | Simd.Neon -> 1.5 | _ -> 0.0
    in
    ( { name = "compiled-replay";
        samples_per_sec = sps;
        minor_words_per_sample = words },
      { name = "compiled-replay-parallel";
        samples_per_sec = psps;
        minor_words_per_sample = pwords },
      (if Simd.enabled () then
         Some
           { name = "compiled-replay-simd";
             samples_per_sec = ssps;
             minor_words_per_sample = swords }
       else None),
      (sps, psps, replay_domains),
      (Simd.impl_name impl, sps, ssps, required) )
  in
  let rows =
    [ engine "serial" Nufft.Gridding.Serial;
      engine "slice" (Nufft.Gridding.Slice_and_dice tile);
      engine "slice-parallel" (Nufft.Gridding.Slice_parallel tile);
      engine "binned" (Nufft.Gridding.Binned tile);
      replay;
      replay_parallel ]
    @ Option.to_list replay_simd
  in
  Printf.printf "  %-16s %14s %18s\n" "engine" "samples/sec"
    "minor words/sample";
  List.iter
    (fun r ->
      Printf.printf "  %-16s %14.0f %18.4f\n" r.name r.samples_per_sec
        r.minor_words_per_sample)
    rows;
  (* Telemetry overhead: the dispatched serial engine passes through one
     span wrapper (an Atomic read when disabled). The disabled run must
     stay within the 5% overhead budget of a direct engine call; the
     enabled run shows the cost of actually recording spans.

     Both sides are measured interleaved, best of three, with telemetry
     disabled for both: a single back-to-back pair is at the mercy of
     frequency drift and page-cache warmup, which historically inflated
     the "overhead" well past the real dispatch cost (the two loops are
     the same code modulo one Atomic read). Max-of-3 on each side pairs
     each loop's best against the other's best. *)
  let direct () = Nufft.Gridding_serial.grid_2d ~table ~g ~gx ~gy values in
  let dispatched () =
    Nufft.Gridding.grid_2d Nufft.Gridding.Serial ~table ~g ~gx ~gy values
  in
  Telemetry.set_enabled false;
  let sps_direct = ref 0.0 and sps_disabled = ref 0.0 in
  for _ = 1 to 3 do
    let d, _ = measure ~m direct in
    if d > !sps_direct then sps_direct := d;
    let s, _ = measure ~m dispatched in
    if s > !sps_disabled then sps_disabled := s
  done;
  let sps_direct = !sps_direct and sps_disabled = !sps_disabled in
  Telemetry.reset ();
  Telemetry.set_enabled true;
  let sps_enabled, _ = measure ~m dispatched in
  Telemetry.set_enabled false;
  Telemetry.reset ();
  let overhead ref_sps sps = 100.0 *. ((ref_sps /. sps) -. 1.0) in
  let disabled_pct = overhead sps_direct sps_disabled in
  Printf.printf "  telemetry overhead (serial engine):\n";
  Printf.printf "  %-24s %14.0f samples/sec\n" "direct call" sps_direct;
  Printf.printf "  %-24s %14.0f samples/sec  (%+.1f%% vs direct)\n"
    "dispatched, disabled" sps_disabled disabled_pct;
  Printf.printf "  %-24s %14.0f samples/sec  (%+.1f%% vs direct)\n"
    "dispatched, enabled" sps_enabled
    (overhead sps_direct sps_enabled);
  Printf.printf "  disabled overhead %.1f%% (budget < 5%%)%s\n" disabled_pct
    (if disabled_pct < 5.0 then "" else "  OVER BUDGET");
  let rsps, psps, rdomains = replay_info in
  if rdomains >= 2 then
    Printf.printf
      "  parallel replay: %.2fx serial on %d domains (required >= %.2fx)\n"
      (psps /. rsps) rdomains
      (float_of_int rdomains /. 2.0)
  else
    Printf.printf
      "  parallel replay: %.2fx on 1 domain — speedup gate SKIPPED (set \
       JIGSAW_BENCH_DOMAINS>=2 for a meaningful gate)\n"
      (psps /. rsps);
  let simd_name, scalar_sps, simd_sps, simd_required = simd_info in
  if simd_required > 0.0 then
    Printf.printf
      "  simd replay (%s): %.2fx scalar replay (required >= %.2fx)\n"
      simd_name (simd_sps /. scalar_sps) simd_required
  else
    Printf.printf
      "  simd replay (%s): %.2fx scalar replay — speedup gate SKIPPED (no \
       vector unit dispatched)\n"
      simd_name (simd_sps /. scalar_sps);
  (* Dispatch-demotion gate for the slice-parallel cliff: the dispatched
     Slice_parallel engine (which demotes to the bit-identical serial
     schedule when [slice_parallel_profitable] says the pool cannot
     win) must never be slower than the serial engine beyond noise. *)
  let dispatch_info =
    let find name = List.find (fun r -> r.name = name) rows in
    let serial_sps = (find "serial").samples_per_sec in
    let dispatched_sps = (find "slice-parallel").samples_per_sec in
    let pool_size = Runtime.Pool.global_size () in
    let profitable =
      Nufft.Gridding.slice_parallel_profitable ~pool_size ~t:tile
        ~w:Bench_data.w ~m
    in
    Printf.printf
      "  slice-parallel dispatch: %.2fx serial (pool %d, %s; required >= \
       0.90x)%s\n"
      (dispatched_sps /. serial_sps)
      pool_size
      (if profitable then "column-scan path" else "demoted to serial")
      (if dispatched_sps /. serial_sps >= 0.9 then "" else "  BELOW FLOOR");
    (serial_sps, dispatched_sps, pool_size, profitable)
  in
  let ((svc_rps, svc_cold_ms, svc_warm_ms, svc_words, svc_m) as svc) =
    service_case ~quick
  in
  Printf.printf
    "  service (warm plan-cache serving, m=%d): %.0f req/s, cold %.3f ms, \
     warm %.3f ms, %.0f minor words/request\n"
    svc_m svc_rps svc_cold_ms svc_warm_ms svc_words;
  let ((_, _, cg_iters, cg_wall) as cg) = cg_case ~quick in
  Printf.printf "  CG (compiled plan, %d iterations): %.3f s\n" cg_iters
    cg_wall;
  if !json then
    write_json ~quick ~g ~m ~tile ~disabled_pct ~replay:replay_info
      ~simd:simd_info ~dispatch:dispatch_info rows svc cg
