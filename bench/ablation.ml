(* Ablations of the design choices DESIGN.md calls out.

   A1  LUT vs on-line weights in the Slice-and-Dice GPU kernel
       (the paper's "reason 1" for beating Impatient, §VI-A).
   A2  Block-grid size for Slice-and-Dice (the paper populates 128x128
       blocks "to improve occupancy", §VI-A).
   A3  Bin/tile edge for the binned kernel (cache residency vs
       parallelism, §II-C).
   A4  Oversampling factor sigma with Beatty-matched window width
       (smaller sigma: cheaper FFT + less memory, pricier gridding,
       §II-B).
   A5  Window function family at fixed W/sigma/L (choice is
       "application-specific", §II-B).
   A6  Naive output-parallel GPU gridding on a thumbnail — why M*G^2
       checks were never viable.
   A7  Multicore CPU Slice-and-Dice (OCaml 5 domains): the model's
       interaction-free columns on a real parallel machine. *)

module Cvec = Numerics.Cvec
module C = Numerics.Complexd

let midsize () =
  Bench_data.load (Trajectory.Dataset.by_name "Image 3")

let a1_lut_vs_online () =
  Printf.printf "\n  A1: slice-and-dice weight source (Image 3)\n";
  let ds = midsize () in
  let p = Gpusim.Kernels.problem_of_samples ~w:Bench_data.w ds.Bench_data.samples in
  let lut = Gpusim.Sim.run (Gpusim.Kernels.slice_and_dice p) in
  let online = Gpusim.Sim.run (Gpusim.Kernels.slice_and_dice ~online_weights:true p) in
  Printf.printf "    LUT (shared memory): %8.3f ms\n" (1e3 *. lut.Gpusim.Sim.time_s);
  Printf.printf "    on-line evaluation : %8.3f ms (%.1fx slower)\n"
    (1e3 *. online.Gpusim.Sim.time_s)
    (online.Gpusim.Sim.time_s /. lut.Gpusim.Sim.time_s)

let a2_grid_blocks () =
  Printf.printf "\n  A2: slice-and-dice block-grid size (Image 3)\n";
  let ds = midsize () in
  let p = Gpusim.Kernels.problem_of_samples ~w:Bench_data.w ds.Bench_data.samples in
  List.iter
    (fun blocks ->
      let r = Gpusim.Sim.run (Gpusim.Kernels.slice_and_dice ~grid_blocks:blocks p) in
      Printf.printf "    %6d blocks: %8.3f ms  (L2 %4.1f%%)\n" blocks
        (1e3 *. r.Gpusim.Sim.time_s)
        (100.0 *. r.Gpusim.Sim.l2_hit_rate))
    [ 256; 1024; 4096; 16384; 65536 ];
  Printf.printf
    "    (too few blocks starve the SMs; the paper's 16384 sits on the \
     plateau)\n"

let a3_bin_size () =
  Printf.printf "\n  A3: binned kernel tile edge (Image 3)\n";
  let ds = midsize () in
  let p = Gpusim.Kernels.problem_of_samples ~w:Bench_data.w ds.Bench_data.samples in
  List.iter
    (fun bin ->
      let main = Gpusim.Sim.run (Gpusim.Kernels.binned ~bin p) in
      let pre = Gpusim.Sim.run (Gpusim.Kernels.binned_presort ~bin p) in
      (* Duplication shrinks as tiles grow; parallelism shrinks too. *)
      let dup =
        Nufft.Gridding_binned.duplication_factor ~w:Bench_data.w ~bin
          ~g:ds.Bench_data.g ~coords:(Nufft.Sample.gx ds.Bench_data.samples)
      in
      Printf.printf
        "    bin=%2d: %8.3f ms (+%5.3f presort)  1D dup %.2fx  blocks %d\n"
        bin
        (1e3 *. main.Gpusim.Sim.time_s)
        (1e3 *. pre.Gpusim.Sim.time_s)
        dup
        ((ds.Bench_data.g / bin) * (ds.Bench_data.g / bin)))
    [ 8; 16 ]

let a4_sigma_sweep () =
  Printf.printf "\n  A4: oversampling factor sigma (Beatty-matched W), n=32, m=400\n";
  Printf.printf "    %-8s %-4s %-6s %14s %14s %14s\n" "sigma" "W" "G"
    "adjoint NRMSD" "grid ops" "fft flops";
  let n = 32 and m = 400 in
  let rng = Random.State.make [| 303 |] in
  let omega () =
    Array.init m (fun _ -> Random.State.float rng (2.0 *. Float.pi) -. Float.pi)
  in
  let ox = omega () and oy = omega () in
  let values =
    Cvec.init m (fun _ ->
        C.make
          (Random.State.float rng 2.0 -. 1.0)
          (Random.State.float rng 2.0 -. 1.0))
  in
  let exact = Nufft.Nudft.adjoint_2d ~n ~omega_x:ox ~omega_y:oy ~values in
  List.iter
    (fun (sigma, w) ->
      let plan = Nufft.Plan.make ~n ~sigma ~w ~l:1024 () in
      let samples =
        Nufft.Sample.of_omega_2d ~g:plan.Nufft.Plan.g ~omega_x:ox ~omega_y:oy
          ~values
      in
      let fast = Nufft.Plan.adjoint_2d plan samples in
      Printf.printf "    %-8.2f %-4d %-6d %14.2e %14d %14.0f\n" sigma w
        plan.Nufft.Plan.g
        (Cvec.nrmsd ~reference:exact fast)
        (m * w * w)
        (Fft.Fftnd.flop_estimate_2d ~nx:plan.Nufft.Plan.g ~ny:plan.Nufft.Plan.g))
    [ (2.0, 6); (1.5, 7); (1.25, 8) ];
  Printf.printf
    "    (sigma < 2 shrinks the FFT/memory at the cost of wider windows — \
     more gridding work, the trade of Beatty et al.)\n"

let a5_window_families () =
  Printf.printf "\n  A5: window function family (w=6, sigma=2, L=1024), n=32, m=400\n";
  let n = 32 and m = 400 and w = 6 in
  let rng = Random.State.make [| 404 |] in
  let omega () =
    Array.init m (fun _ -> Random.State.float rng (2.0 *. Float.pi) -. Float.pi)
  in
  let ox = omega () and oy = omega () in
  let values =
    Cvec.init m (fun _ ->
        C.make
          (Random.State.float rng 2.0 -. 1.0)
          (Random.State.float rng 2.0 -. 1.0))
  in
  let exact = Nufft.Nudft.adjoint_2d ~n ~omega_x:ox ~omega_y:oy ~values in
  List.iter
    (fun (name, kernel) ->
      let plan = Nufft.Plan.make ~n ~kernel ~w ~l:1024 () in
      let samples =
        Nufft.Sample.of_omega_2d ~g:plan.Nufft.Plan.g ~omega_x:ox ~omega_y:oy
          ~values
      in
      let fast = Nufft.Plan.adjoint_2d plan samples in
      Printf.printf "    %-16s %12.2e\n" name
        (Cvec.nrmsd ~reference:exact fast))
    [ ("kaiser-bessel", Numerics.Window.default_kaiser_bessel ~width:w ~sigma:2.0);
      ("gaussian", Numerics.Window.default_gaussian ~width:w);
      ("bspline", Numerics.Window.Bspline);
      ("sinc", Numerics.Window.Sinc) ];
  (* MIRT's exact min-max interpolator (solve-per-sample), for reference. *)
  let g = 2 * n in
  let gx = Array.map (Nufft.Sample.omega_to_grid ~g) ox in
  let gy = Array.map (Nufft.Sample.omega_to_grid ~g) oy in
  let mm =
    Nufft.Minmax.adjoint_2d ~scaling:Nufft.Minmax.Kaiser_bessel_scaling ~n ~g
      ~w ~gx ~gy values
  in
  Printf.printf "    %-16s %12.2e\n" "min-max (exact)"
    (Cvec.nrmsd ~reference:exact mm);
  Printf.printf
    "    (Kaiser-Bessel with the Beatty beta wins among tabulated windows \
     — the choice every system in the paper makes; MIRT's exact min-max \
     interpolation beats them all at the cost of a per-sample solve)\n"

let a6_naive_gpu () =
  Printf.printf "\n  A6: naive output-parallel GPU gridding (thumbnail: g=64, m=2048)\n";
  let traj = Trajectory.Radial.make ~spokes:16 ~readout:128 () in
  let g = 64 in
  let values = Cvec.create (Trajectory.Traj.length traj) in
  let s =
    Nufft.Sample.of_omega_2d ~g ~omega_x:traj.Trajectory.Traj.omega_x
      ~omega_y:traj.Trajectory.Traj.omega_y ~values
  in
  let p = Gpusim.Kernels.problem_of_samples ~w:Bench_data.w s in
  let naive = Gpusim.Sim.run (Gpusim.Kernels.naive_output p) in
  let slice = Gpusim.Sim.run (Gpusim.Kernels.slice_and_dice ~grid_blocks:1024 p) in
  Printf.printf "    naive:          %10.3f ms (%d instructions)\n"
    (1e3 *. naive.Gpusim.Sim.time_s)
    naive.Gpusim.Sim.instructions;
  Printf.printf "    slice-and-dice: %10.3f ms  -> %.0fx faster at g=%d;\n"
    (1e3 *. slice.Gpusim.Sim.time_s)
    (naive.Gpusim.Sim.time_s /. slice.Gpusim.Sim.time_s)
    g;
  Printf.printf
    "    the gap scales as G^2/T^2 = %.0fx of boundary-check work at \
     g=1024.\n"
    (float_of_int (1024 * 1024) /. 64.0)

let a7_multicore_cpu () =
  Printf.printf
    "\n  A7: multicore CPU slice-and-dice (OCaml 5 domains; this host \
     reports %d core(s))\n"
    (Domain.recommended_domain_count ());
  let ds =
    Bench_data.load
      (Trajectory.Dataset.small_variant (Trajectory.Dataset.by_name "Image 3"))
  in
  let table = Perf_models.table_for ~l:32 () in
  let s = ds.Bench_data.samples in
  List.iter
    (fun domains ->
      let dt =
        Perf_models.time_best ~repeats:2 (fun () ->
            Nufft.Gridding_slice.grid_2d_parallel ~domains ~table
              ~g:ds.Bench_data.g ~t:8 ~gx:(Nufft.Sample.gx s)
              ~gy:(Nufft.Sample.gy s) s.Nufft.Sample.values)
      in
      Printf.printf "    %d domain(s): %8.2f ms\n" domains (1e3 *. dt))
    [ 1; 2; 4 ];
  Printf.printf
    "    (columns partition with no interaction — scaling tracks the \
     physical core count; the M*T^2-check schedule only pays off with \
     real parallel lanes, which is the paper's whole point)\n"

let run () =
  Printf.printf "\n=== Ablations (design-choice studies) ===\n";
  a1_lut_vs_online ();
  a2_grid_blocks ();
  a3_bin_size ();
  a4_sigma_sweep ();
  a5_window_families ();
  a6_naive_gpu ();
  a7_multicore_cpu ()
