(* Sec. VI-A, 3D: JIGSAW 3D Slice runtime model and functional check.

   An unsorted M-sample 3D set costs (M+15)*Nz cycles (the whole stream
   re-runs per slice); pre-binning by z-slice reduces it to (M+15)*Wz
   (each sample only visits the Wz slices its window touches). *)

module Cvec = Numerics.Cvec
module C = Numerics.Complexd

let run () =
  Printf.printf "\n=== E10: JIGSAW 3D Slice runtime ===\n";
  let w = Bench_data.w in
  Printf.printf "  %-10s %10s %16s %16s %10s\n" "Nz" "M" "unsorted(cyc)"
    "z-binned(cyc)" "gain";
  List.iter
    (fun (nz, m) ->
      let cfg = Jigsaw.Config.make ~n:256 ~w ~l:32 () in
      let table = Perf_models.table_for ~precision:Numerics.Weight_table.Fixed16 ~l:32 () in
      let e3 = Jigsaw.Engine3d.create cfg ~table ~nz in
      let unsorted = Jigsaw.Engine3d.unsorted_cycles e3 ~m in
      let sorted = Jigsaw.Engine3d.z_sorted_cycles e3 ~m in
      Printf.printf "  %-10d %10d %16d %16d %9.1fx\n" nz m unsorted sorted
        (float_of_int unsorted /. float_of_int sorted))
    [ (64, 100_000); (256, 500_000); (1024, 1_000_000) ];
  Printf.printf "  (gain = Nz / Wz, with Wz = %d)\n" w;
  (* Functional check: grid a small 3D volume and verify against a direct
     per-slice serial computation with the same z-weighting. *)
  let g = 16 and nz = 8 and m = 120 in
  let cfg = Jigsaw.Config.make ~n:g ~w:4 ~l:32 () in
  let kernel = Numerics.Window.default_kaiser_bessel ~width:4 ~sigma:2.0 in
  let tbl = Numerics.Weight_table.make ~precision:Numerics.Weight_table.Fixed16
      ~kernel ~width:4 ~l:32 () in
  let rng = Random.State.make [| 77 |] in
  let gx = Array.init m (fun _ -> Random.State.float rng (float_of_int g)) in
  let gy = Array.init m (fun _ -> Random.State.float rng (float_of_int g)) in
  let gz = Array.init m (fun _ -> Random.State.float rng (float_of_int nz)) in
  let values =
    Cvec.init m (fun _ ->
        C.make
          (Random.State.float rng 0.2 -. 0.1)
          (Random.State.float rng 0.2 -. 0.1))
  in
  let e3 = Jigsaw.Engine3d.create cfg ~table:tbl ~nz in
  let slices = Jigsaw.Engine3d.grid_volume e3 ~gx ~gy ~gz values in
  (* Reference: per-slice 2D double gridding of z-weighted values. *)
  let dtbl = Numerics.Weight_table.make ~kernel ~width:4 ~l:32 () in
  let max_err = ref 0.0 in
  Array.iteri
    (fun z slice ->
      let zw = Array.map (fun uz ->
          Numerics.Weight_table.lookup dtbl (float_of_int z -. uz)) gz in
      let wvals = Cvec.init m (fun j -> C.scale zw.(j) (Cvec.get values j)) in
      let reference =
        Nufft.Gridding_serial.grid_2d ~table:dtbl ~g ~gx ~gy wvals
      in
      let e = Cvec.nrmsd ~reference slice in
      if Cvec.norm2 reference > 1e-12 && e > !max_err then max_err := e)
    slices;
  Printf.printf
    "  functional: %d samples over %d slices; worst per-slice NRMSD vs \
     double reference %.2e (fixed-point quantisation only)\n"
    m nz !max_err;
  Printf.printf "  saturations: %d\n" (Jigsaw.Engine3d.saturation_events e3)
